package lint

// Per-function control-flow graphs. The flow-sensitive analyzers
// (poolreturn, dfsborrow, lockscope, goleak, sharedcapture) all run on
// the same representation: a list of basic blocks over the function's
// statements, with edges for if/for/range/switch/select/return and the
// branch statements, and defers modeled as exit-edge actions. The
// builder is purely syntactic — it needs no type information — and it
// never descends into a nested function literal: a FuncLit inside a
// statement is a value, and analyzers that care about literal bodies
// build a separate CFG per body (see funcBodies).
//
// Three conventions matter to transfer functions:
//
//   - An expression node (an if/for condition, a switch tag, a case
//     expression) appears in a block on its own, in evaluation order.
//   - A RangeStmt is represented by a RangeHead marker in the loop-head
//     block — the header's X evaluation plus key/value rebinding —
//     so walking the marker never re-visits the loop body.
//   - A DeferStmt appears twice: at its registration site (as the
//     statement itself) and, wrapped in DeferRun, in the exit block in
//     reverse registration order — the CFG's over-approximation of
//     "all registered defers run when the function returns".
//
// Calls to panic and os.Exit terminate their block with no successor:
// facts do not flow from a panicking path to the exit block, so a
// must-analysis (poolreturn's must-release, goleak's must-join) does
// not charge obligations on paths that never return normally.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (creation order,
	// deterministic for a given AST).
	Index int
	// Nodes are the block's statements and evaluated expressions, in
	// execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges, in creation order.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block; Blocks[0] is Entry and Blocks[1] Exit.
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit: every return statement and the
	// fall-off-the-end path lead here. Its Nodes are the DeferRun
	// actions, in reverse registration order.
	Exit *Block
	// Defers are the function's defer statements in registration order.
	Defers []*ast.DeferStmt
}

// DeferRun marks the execution — not the registration — of a deferred
// call. DeferRun nodes live only in the exit block.
type DeferRun struct {
	Defer *ast.DeferStmt
}

func (d *DeferRun) Pos() token.Pos { return d.Defer.Pos() }
func (d *DeferRun) End() token.Pos { return d.Defer.End() }

// CaseBind marks the per-clause binding of a type switch: in
// `switch x := e.(type)`, each case clause introduces its own implicit
// object for x (types.Info.Implicits keyed by the clause), bound from
// the subject e. It heads the clause's block so flow-sensitive
// analyses can transfer facts from the subject to the binding.
type CaseBind struct {
	Switch *ast.TypeSwitchStmt
	Clause *ast.CaseClause
}

func (c *CaseBind) Pos() token.Pos { return c.Clause.Pos() }
func (c *CaseBind) End() token.Pos { return c.Clause.Colon }

// RangeHead marks a range loop's header: one evaluation of X plus the
// rebinding of the key/value variables. It carries the RangeStmt but
// stands only for the header — transfer functions must not walk the
// statement's Body through it.
type RangeHead struct {
	Range *ast.RangeStmt
}

func (r *RangeHead) Pos() token.Pos { return r.Range.Pos() }
func (r *RangeHead) End() token.Pos { return r.Range.X.End() }

// BuildCFG builds the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{}
	b := &cfgBuilder{cfg: cfg, labels: map[string]*Block{}}
	cfg.Entry = b.newBlock()
	cfg.Exit = b.newBlock()
	b.cur = cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, cfg.Exit) // falling off the end returns
	for _, g := range b.gotos {
		if target, ok := b.labels[g.name]; ok {
			b.edge(g.from, target)
		}
	}
	for i := len(cfg.Defers) - 1; i >= 0; i-- {
		cfg.Exit.Nodes = append(cfg.Exit.Nodes, &DeferRun{Defer: cfg.Defers[i]})
	}
	return cfg
}

// Reachable returns the blocks reachable from Entry, in index order.
// Unreachable blocks (code after return/panic, loop exits of for{})
// stay in Blocks but carry no facts worth reporting on.
func (c *CFG) Reachable() []*Block {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{c.Entry}
	seen[c.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, blk := range c.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// ctrlCtx is one enclosing breakable construct: a loop (continueTo
// non-nil) or a switch/select (continueTo nil).
type ctrlCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from *Block
	name string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	ctxs   []ctrlCtx
	labels map[string]*Block
	gotos  []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) append(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) push(c ctrlCtx) { b.ctxs = append(b.ctxs, c) }
func (b *cfgBuilder) pop()           { b.ctxs = b.ctxs[:len(b.ctxs)-1] }

// breakTarget resolves a break (label "" = innermost breakable).
func (b *cfgBuilder) breakTarget(label string) *Block {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		if label == "" || b.ctxs[i].label == label {
			return b.ctxs[i].breakTo
		}
	}
	return nil
}

// continueTarget resolves a continue (label "" = innermost loop).
func (b *cfgBuilder) continueTarget(label string) *Block {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		if b.ctxs[i].continueTo == nil {
			continue // switch/select: continue passes through
		}
		if label == "" || b.ctxs[i].label == label {
			return b.ctxs[i].continueTo
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // anything after is unreachable
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.append(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.append(s)
		if isTerminalCall(s.X) {
			// panic/os.Exit: the path ends here, with no normal-exit
			// edge, so exit-time must-facts ignore it.
			b.cur = b.newBlock()
		}
	case nil:
		// nothing (absent else, empty comm clause)
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.append(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.append(s.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.append(s.Cond)
	}
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.push(ctrlCtx{label: label, breakTo: after, continueTo: post})
	b.cur = body
	b.stmt(s.Body)
	b.pop()
	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(b.cur, head)
	head.Nodes = append(head.Nodes, &RangeHead{Range: s})
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.push(ctrlCtx{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.pop()
	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.append(s.Tag)
	}
	cond := b.cur
	after := b.newBlock()
	clauses := s.Body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cond, blocks[i])
	}
	b.push(ctrlCtx{label: label, breakTo: after})
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.append(e)
		}
		b.stmtList(cc.Body)
		if endsWithFallthrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.pop()
	if !hasDefault {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.append(s.Assign) // one evaluation of the subject
	cond := b.cur
	after := b.newBlock()
	b.push(ctrlCtx{label: label, breakTo: after})
	hasDefault := false
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(cond, blk)
		b.cur = blk
		blk.Nodes = append(blk.Nodes, &CaseBind{Switch: s, Clause: cc})
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.pop()
	if !hasDefault {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	sel := b.cur
	after := b.newBlock()
	b.push(ctrlCtx{label: label, breakTo: after})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(sel, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.pop()
	// select{} with no clauses blocks forever: after stays unreachable.
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock()
	b.edge(b.cur, target)
	b.cur = target
	b.labels[s.Label.Name] = target
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if target := b.breakTarget(label); target != nil {
			b.edge(b.cur, target)
		}
		b.cur = b.newBlock()
	case token.CONTINUE:
		if target := b.continueTarget(label); target != nil {
			b.edge(b.cur, target)
		}
		b.cur = b.newBlock()
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, name: label})
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		// The enclosing switch builder wires the edge to the next clause.
	}
}

// endsWithFallthrough reports whether a case body's last statement is
// fallthrough (possibly labeled, which gofmt forbids but Go allows).
func endsWithFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	for {
		ls, ok := last.(*ast.LabeledStmt)
		if !ok {
			break
		}
		last = ls.Stmt
	}
	br, ok := last.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminalCall matches the calls after which control cannot continue
// on the normal path: the panic built-in and os.Exit. Matching is
// syntactic (the CFG has no type information); shadowing panic or os is
// not an idiom this repository needs the graph to survive.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// funcBody is one function-shaped body to analyze: a declaration or a
// function literal. The flow-sensitive analyzers build one CFG per
// body; a literal nested in a declaration is analyzed separately, not
// inlined.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

// funcBodies collects every function body of a file: declarations
// first (in source order), then literals in source order of their
// position, each exactly once.
func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Body != nil {
			out = append(out, funcBody{decl: fd, body: fd.Body})
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			out = append(out, funcBody{lit: lit, body: lit.Body})
		}
		return true
	})
	return out
}
