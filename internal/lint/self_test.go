package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the suite's meta-test: it loads this repository's
// own module and runs every analyzer over it, so a change that
// reintroduces a nondeterministic code shape (or discards a guarded
// I/O error, or leaks a pooled buffer) fails `go test ./...` even when
// no behavioral test covers the regression. Fix the finding, or — when
// the invariant provably cannot be violated at that site — annotate it
// with //haten2:allow <check> <reason>.
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("loading the repository module: %v", err)
	}
	diags := RunSuite(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the finding or annotate the line with //haten2:allow <check> <reason>")
	}
}
