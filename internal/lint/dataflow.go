package lint

// A generic forward/backward dataflow engine over the CFGs of cfg.go.
// An analysis supplies a lattice (the fact domain with its join) and a
// transfer function (the effect of one CFG node on a fact); the solver
// iterates a worklist to the least fixed point and the analysis then
// replays blocks to read the fact in force at each node.
//
// Conventions:
//
//   - Facts are treated as immutable values. A transfer function must
//     never mutate its input fact; the copy-on-write set helpers below
//     make that cheap for the common set-shaped domains.
//   - Bottom is the join identity (join(Bottom, x) == x), which is the
//     empty set for a may-analysis (union join) and the ⊤ marker for a
//     must-analysis (intersection join): an unvisited path constrains
//     nothing.
//   - The solver visits only blocks reachable from the boundary, so
//     facts on unreachable blocks stay Bottom and analyses skip them
//     via CFG.Reachable.

import (
	"go/ast"
	"sort"
)

// Fact is one analysis-specific dataflow value.
type Fact any

// Lattice is a fact domain: the join-semilattice the solver iterates
// over. Joins must be commutative, associative, and monotone, and the
// domain must have finite height for termination.
type Lattice interface {
	// Bottom is the join identity, used for unvisited blocks.
	Bottom() Fact
	// Join combines the facts of two control-flow predecessors
	// (successors, for a backward analysis).
	Join(a, b Fact) Fact
	// Equal reports whether two facts are the same point of the
	// lattice (the solver's convergence test).
	Equal(a, b Fact) bool
}

// Transfer is the effect of one CFG node on a fact. For a backward
// analysis the input fact holds after the node (in execution order)
// and the result holds before it.
type Transfer func(n ast.Node, f Fact) Fact

// Flow is one dataflow problem.
type Flow struct {
	CFG      *CFG
	Lat      Lattice
	Transfer Transfer
	// Backward selects the analysis direction: facts flow from Exit to
	// Entry and blocks transfer in reverse node order.
	Backward bool
	// Boundary is the fact at the boundary block: Entry's incoming fact
	// for a forward analysis, Exit's outgoing fact for a backward one.
	Boundary Fact
}

// Solution holds the solved per-block facts. In[b] is the fact at the
// block's start in execution order, Out[b] at its end, for both
// directions.
type Solution struct {
	flow *Flow
	In   map[*Block]Fact
	Out  map[*Block]Fact
}

// Solve runs the worklist algorithm to the least fixed point.
func (f *Flow) Solve() *Solution {
	sol := &Solution{
		flow: f,
		In:   make(map[*Block]Fact, len(f.CFG.Blocks)),
		Out:  make(map[*Block]Fact, len(f.CFG.Blocks)),
	}
	for _, b := range f.CFG.Blocks {
		sol.In[b] = f.Lat.Bottom()
		sol.Out[b] = f.Lat.Bottom()
	}
	queued := make([]bool, len(f.CFG.Blocks))
	var list []*Block
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			list = append(list, b)
		}
	}
	// Seed every block on a path from the boundary (out-facts equal to
	// Bottom would otherwise never schedule their successors), but only
	// those: facts must not leak out of unreachable code.
	for _, b := range f.reachableFromBoundary() {
		push(b)
	}
	// The domains are finite-height and transfers monotone, so the
	// fixpoint arrives long before the cap; the cap only bounds a
	// misbehaving analysis instead of hanging the build.
	maxSteps := 256 * (len(f.CFG.Blocks) + 1)
	for steps := 0; len(list) > 0 && steps < maxSteps; steps++ {
		b := list[0]
		list = list[1:]
		queued[b.Index] = false
		if f.Backward {
			acc := f.Lat.Bottom()
			if b == f.CFG.Exit {
				acc = f.Lat.Join(acc, f.Boundary)
			}
			for _, s := range b.Succs {
				acc = f.Lat.Join(acc, sol.In[s])
			}
			sol.Out[b] = acc
			nf := acc
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				nf = f.Transfer(b.Nodes[i], nf)
			}
			if !f.Lat.Equal(nf, sol.In[b]) {
				sol.In[b] = nf
				for _, p := range b.Preds {
					push(p)
				}
			}
		} else {
			acc := f.Lat.Bottom()
			if b == f.CFG.Entry {
				acc = f.Lat.Join(acc, f.Boundary)
			}
			for _, p := range b.Preds {
				acc = f.Lat.Join(acc, sol.Out[p])
			}
			sol.In[b] = acc
			nf := acc
			for _, n := range b.Nodes {
				nf = f.Transfer(n, nf)
			}
			if !f.Lat.Equal(nf, sol.Out[b]) {
				sol.Out[b] = nf
				for _, s := range b.Succs {
					push(s)
				}
			}
		}
	}
	return sol
}

// reachableFromBoundary returns the blocks on a path from the
// direction's boundary: reachable from Entry for a forward analysis,
// co-reachable from Exit (following edges backwards) for a backward
// one, in index order.
func (f *Flow) reachableFromBoundary() []*Block {
	if !f.Backward {
		return f.CFG.Reachable()
	}
	seen := make([]bool, len(f.CFG.Blocks))
	stack := []*Block{f.CFG.Exit}
	seen[f.CFG.Exit.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range blk.Preds {
			if !seen[p.Index] {
				seen[p.Index] = true
				stack = append(stack, p)
			}
		}
	}
	var out []*Block
	for _, blk := range f.CFG.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// Replay walks one block in execution order, calling visit with each
// node and the fact in force at it: for a forward analysis the fact
// holds immediately before the node, for a backward analysis
// immediately after it (the fact about the paths from that point on).
func (s *Solution) Replay(b *Block, visit func(n ast.Node, f Fact)) {
	if s.flow.Backward {
		f := s.Out[b]
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			visit(b.Nodes[i], f)
			f = s.flow.Transfer(b.Nodes[i], f)
		}
		return
	}
	f := s.In[b]
	for _, n := range b.Nodes {
		visit(n, f)
		f = s.flow.Transfer(n, f)
	}
}

// ---- reusable lattices ------------------------------------------------

// SetLattice is the may-analysis powerset lattice over keys of type K:
// facts are map[K]bool sets, Join is union, Bottom the empty set. A
// fact is present when it holds on SOME path.
type SetLattice[K comparable] struct{}

func (SetLattice[K]) Bottom() Fact { return map[K]bool(nil) }

func (SetLattice[K]) Join(a, b Fact) Fact {
	am, bm := a.(map[K]bool), b.(map[K]bool)
	if len(am) == 0 {
		return bm
	}
	if len(bm) == 0 {
		return am
	}
	if setLEQ(bm, am) {
		return am
	}
	m := make(map[K]bool, len(am)+len(bm))
	for k := range am {
		m[k] = true
	}
	for k := range bm {
		m[k] = true
	}
	return m
}

func (SetLattice[K]) Equal(a, b Fact) bool {
	am, bm := a.(map[K]bool), b.(map[K]bool)
	return len(am) == len(bm) && setLEQ(am, bm)
}

// MustSet is the fact of a must-analysis over keys of type K: the set
// of facts holding on EVERY path so far. Top marks the join identity —
// no path reaches this point yet, so nothing is constrained.
type MustSet[K comparable] struct {
	Top bool
	M   map[K]bool
}

// Has reports whether k must hold. On ⊤ nothing is known to hold:
// reporting true there would let unreachable code satisfy a must-fact.
func (s MustSet[K]) Has(k K) bool { return !s.Top && s.M[k] }

// MustSetLattice is the must-analysis dual of SetLattice: Join is
// intersection and Bottom the ⊤ marker.
type MustSetLattice[K comparable] struct{}

func (MustSetLattice[K]) Bottom() Fact { return MustSet[K]{Top: true} }

func (MustSetLattice[K]) Join(a, b Fact) Fact {
	as, bs := a.(MustSet[K]), b.(MustSet[K])
	if as.Top {
		return bs
	}
	if bs.Top {
		return as
	}
	if setLEQ(as.M, bs.M) {
		return as
	}
	m := make(map[K]bool)
	for k := range as.M {
		if bs.M[k] {
			m[k] = true
		}
	}
	return MustSet[K]{M: m}
}

func (MustSetLattice[K]) Equal(a, b Fact) bool {
	as, bs := a.(MustSet[K]), b.(MustSet[K])
	if as.Top != bs.Top {
		return false
	}
	return as.Top || (len(as.M) == len(bs.M) && setLEQ(as.M, bs.M))
}

// BoolLattice is the two-point lattice over bool facts. With All set,
// Join is conjunction — the fact holds only when it holds on every
// path (must-analysis) — otherwise disjunction (may-analysis).
type BoolLattice struct{ All bool }

func (l BoolLattice) Bottom() Fact { return l.All }

func (l BoolLattice) Join(a, b Fact) Fact {
	if l.All {
		return a.(bool) && b.(bool)
	}
	return a.(bool) || b.(bool)
}

func (BoolLattice) Equal(a, b Fact) bool { return a == b }

// setLEQ reports a ⊆ b.
func setLEQ[K comparable](a, b map[K]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// setAdd returns the set with k added, copying on write.
func setAdd[K comparable](m map[K]bool, k K) map[K]bool {
	if m[k] {
		return m
	}
	out := make(map[K]bool, len(m)+1)
	for key := range m {
		out[key] = true
	}
	out[k] = true
	return out
}

// setDel returns the set with k removed, copying on write.
func setDel[K comparable](m map[K]bool, k K) map[K]bool {
	if !m[k] {
		return m
	}
	out := make(map[K]bool, len(m))
	for key := range m {
		if key != k {
			out[key] = true
		}
	}
	return out
}

// setDelFunc returns the set with every key matching drop removed,
// copying on write.
func setDelFunc[K comparable](m map[K]bool, drop func(K) bool) map[K]bool {
	any := false
	for k := range m {
		if drop(k) {
			any = true
			break
		}
	}
	if !any {
		return m
	}
	out := make(map[K]bool, len(m))
	for k := range m {
		if !drop(k) {
			out[k] = true
		}
	}
	return out
}

// mustAdd returns the must-set with k added, copying on write. Adding
// to ⊤ pins the set to {k}: the transfer establishes the fact on this
// path regardless of what was unknown before.
func mustAdd[K comparable](s MustSet[K], k K) MustSet[K] {
	if !s.Top && s.M[k] {
		return s
	}
	m := make(map[K]bool, len(s.M)+1)
	for key := range s.M {
		m[key] = true
	}
	m[k] = true
	return MustSet[K]{M: m}
}

// mustDel returns the must-set with k removed, copying on write.
func mustDel[K comparable](s MustSet[K], k K) MustSet[K] {
	if s.Top || !s.M[k] {
		return s
	}
	m := make(map[K]bool, len(s.M))
	for key := range s.M {
		if key != k {
			m[key] = true
		}
	}
	return MustSet[K]{M: m}
}

// sortedKeys returns the set's keys in sorted order, for deterministic
// diagnostics.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
