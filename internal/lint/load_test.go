package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The loader's error paths: each failure mode must surface a message
// that names the problem, because haten2lint prints these verbatim and
// exits 2.

func TestLoadNonexistentDir(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "no", "such", "module"))
	if err == nil {
		t.Fatal("Load of a nonexistent directory succeeded")
	}
	if !strings.Contains(err.Error(), "not a module root") {
		t.Errorf("error = %q, want it to mention \"not a module root\"", err)
	}
}

func TestLoadDirWithoutGoMod(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "plain.go", "package plain\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of a module-less directory succeeded")
	}
	if !strings.Contains(err.Error(), "not a module root") {
		t.Errorf("error = %q, want it to mention \"not a module root\"", err)
	}
}

func TestLoadGoModWithoutModuleLine(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "go 1.22\n")
	writeFixtureFile(t, dir, "plain.go", "package plain\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load with a module-less go.mod succeeded")
	}
	if !strings.Contains(err.Error(), "no module declaration") {
		t.Errorf("error = %q, want it to mention \"no module declaration\"", err)
	}
}

func TestLoadMalformedSource(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/broken\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "broken.go", "package broken\n\nfunc f( {\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of malformed source succeeded")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error = %q, want it to name broken.go", err)
	}
}

func TestLoadTypeCheckFailure(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/illtyped\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "illtyped.go", "package illtyped\n\nfunc f() int { return \"not an int\" }\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of ill-typed source succeeded")
	}
	if !strings.Contains(err.Error(), "lint: type-checking fixture.example/illtyped") {
		t.Errorf("error = %q, want a type-checking failure naming the package", err)
	}
}

func TestLoadNoGoPackages(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/empty\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "README.txt", "no Go here\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of a source-less module succeeded")
	}
	if !strings.Contains(err.Error(), "no Go packages under") {
		t.Errorf("error = %q, want it to mention \"no Go packages under\"", err)
	}
}

func TestLoadConflictingPackageNames(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/conflict\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "a.go", "package alpha\n")
	writeFixtureFile(t, dir, "b.go", "package beta\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of a two-package directory succeeded")
	}
	if !strings.Contains(err.Error(), "multiple packages") {
		t.Errorf("error = %q, want it to mention \"multiple packages\"", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/cycle\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "a/a.go", "package a\n\nimport _ \"fixture.example/cycle/b\"\n")
	writeFixtureFile(t, dir, "b/b.go", "package b\n\nimport _ \"fixture.example/cycle/a\"\n")
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load of an import cycle succeeded")
	}
	if !strings.Contains(err.Error(), "import cycle through") {
		t.Errorf("error = %q, want it to mention \"import cycle through\"", err)
	}
}
