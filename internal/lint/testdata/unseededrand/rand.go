// Fixture for the unseededrand analyzer: global math/rand functions.
package unseededrand

import "math/rand"

// flaggedGlobals draw from the process-global, auto-seeded source.
func flaggedGlobals(n int) (int, float64) {
	i := rand.Intn(n)                  // want "rand.Intn draws from the process-global RNG"
	f := rand.Float64()                // want "rand.Float64 draws from the process-global RNG"
	rand.Shuffle(n, func(a, b int) {}) // want "rand.Shuffle draws from the process-global RNG"
	return i, f
}

// cleanSeeded constructs an explicit generator; its methods are fine.
func cleanSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// cleanZipf builds a seeded Zipf generator through the constructor.
func cleanZipf(seed int64) *rand.Zipf {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.1, 1, 100)
}

// suppressed keeps one global draw with a recorded reason.
func suppressed() int {
	//haten2:allow unseededrand fixture demonstrating the suppression syntax
	return rand.Int()
}
