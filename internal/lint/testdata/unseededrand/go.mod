module fixture.example/unseededrand

go 1.22
