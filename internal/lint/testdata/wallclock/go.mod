module fixture.example/wallclock

go 1.22
