// The benchmark harness is where wall time is the measured quantity:
// this whole package is exempt.
package bench

import "time"

// Measure times fn for real; not flagged.
func Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
