// Fixture mirroring internal/obs: the tracing layer reports simulated
// time only, so wall-clock reads are banned there like everywhere
// outside the benchmark packages.
package obs

import "time"

// flaggedStamp would smuggle host time into span timestamps.
func flaggedStamp() int64 {
	return time.Now().UnixMicro() // want "time.Now reads the wall clock"
}

// cleanClock advances simulated time from cost-model durations.
func cleanClock(clock, dur float64) float64 {
	return clock + dur
}
