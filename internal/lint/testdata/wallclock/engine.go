// Fixture for the wallclock analyzer: wall-clock reads outside the
// benchmark packages.
package wallclock

import "time"

// flaggedNow reads the wall clock in engine code.
func flaggedNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// flaggedSince is sugar for a time.Now read.
func flaggedSince(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// cleanDuration manipulates time values without reading the clock.
func cleanDuration(d time.Duration) time.Duration {
	return d * 2
}

// suppressed records why a wall-clock read is acceptable here.
func suppressed() time.Time {
	//haten2:allow wallclock fixture demonstrating the suppression syntax
	return time.Now()
}
