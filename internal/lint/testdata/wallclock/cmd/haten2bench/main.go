// The benchmark CLI is exempt like internal/bench.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now()) // not flagged: cmd/haten2bench is an allowed package
}
