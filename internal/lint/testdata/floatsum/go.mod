module fixture.example/floatsum

go 1.22
