// Fixture for the floatsum analyzer: floating-point accumulation in
// map-iteration order.
package floatsum

import "sort"

// flaggedCompound accumulates with += while ranging a map.
func flaggedCompound(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation while ranging over a map"
	}
	return sum
}

// flaggedSpelledOut uses the x = x + v form, and x = x - v.
func flaggedSpelledOut(m map[int]float64) (float64, float64) {
	var add, sub float64
	for _, v := range m {
		add = add + v // want "floating-point accumulation while ranging over a map"
		sub = sub - v // want "floating-point accumulation while ranging over a map"
	}
	return add, sub
}

// flaggedMapTarget accumulates into a float-valued map cell.
func flaggedMapTarget(m map[int]float64, out map[int]float64) {
	for k, v := range m {
		out[k%2] += v // want "floating-point accumulation while ranging over a map"
	}
}

// cleanIntCount counts in map order: integer addition is associative,
// so the total is order-independent.
func cleanIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// cleanSliceSum sums floats over a slice: iteration order is fixed.
func cleanSliceSum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// cleanSortedSum drains the map through sorted keys before summing.
func cleanSortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// suppressed: max is order-independent, which the annotation records.
func suppressed(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			//haten2:allow floatsum assignment below is a max reduction, not a sum; order irrelevant
			best = best + (v - best)
		}
	}
	return best
}
