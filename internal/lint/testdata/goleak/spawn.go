// Fixture mirroring the engine's worker fan-out (internal/mr's
// runPool): every spawned goroutine must be joined on every path.
package goleak

import "sync"

// okPoolPattern is runPool's sanctioned shape: Add before each spawn,
// deferred Done inside the body, Wait on the single path after the
// loop.
func okPoolPattern(workers, n int, fn func(int)) {
	var wg sync.WaitGroup
	next := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next
				next++
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// flaggedNoSignal spawns a goroutine whose body signals nothing.
func flaggedNoSignal(fn func()) {
	go fn2(fn) // want "goroutine signals no completion"
}

func fn2(fn func()) { fn() }

// flaggedNoAdd calls Done without a matching Add before the spawn: the
// Wait can return while the goroutine still runs.
func flaggedNoAdd(fn func()) {
	var wg sync.WaitGroup
	go func() { // want "wg.Add does not run on every path before the spawn"
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}

// flaggedNoWait never joins: the goroutine outlives the function.
func flaggedNoWait(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "wg.Wait does not run on every path after the spawn"
		defer wg.Done()
		fn()
	}()
}

// flaggedBranchWait joins on only one path; the early return leaks the
// goroutine. The flow-insensitive reading ("a Wait exists somewhere")
// would have accepted this.
func flaggedBranchWait(fn func(), fast bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "wg.Wait does not run on every path after the spawn"
		defer wg.Done()
		fn()
	}()
	if fast {
		return
	}
	wg.Wait()
}

// okDeferredWait registers the join before spawning: every normal exit
// runs it.
func okDeferredWait(fn func()) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
}

// okChannelJoin receives the goroutine's result on the only path.
func okChannelJoin(compute func() int) int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// okChannelRange drains the goroutine's stream to completion.
func okChannelRange(n int) int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// flaggedChannelNoRecv sends into a channel nobody drains on the early
// path.
func flaggedChannelNoRecv(compute func() int, fast bool) int {
	ch := make(chan int)
	go func() { // want "no receive from ch runs on every path after the spawn"
		ch <- compute()
	}()
	if fast {
		return 0
	}
	return <-ch
}

// okHandoff passes the WaitGroup to the worker; the Done obligation
// travels with the pointer.
func okHandoff(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg, fn)
	wg.Wait()
}

func worker(wg *sync.WaitGroup, fn func()) {
	defer wg.Done()
	fn()
}

// suppressed records why one deliberately detached goroutine is
// acceptable.
func suppressed(fn func()) {
	//haten2:allow goleak fixture demonstrating a deliberately detached background goroutine
	go fn2(fn)
}
