module fixture.example/goleak

go 1.22
