// Fixture mirroring the engine's critical sections (internal/mr's
// cluster.go, internal/dfs's dfs.go, internal/obs's obs.go): work that
// belongs outside a held mutex.
package lockscope

import (
	"sync"

	"fixture.example/lockscope/internal/dfs"
	"fixture.example/lockscope/internal/obs"
)

type cluster struct {
	mu   sync.Mutex
	io   sync.Mutex
	fs   *dfs.FS
	tr   *obs.Tracer
	jobs int
	done chan int
}

// flaggedDFSUnderLock performs file-system I/O inside the critical
// section: every other job serializes behind the read.
func (c *cluster) flaggedDFSUnderLock(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs++
	c.fs.ReadAll(name) // want "DFS I/O (ReadAll) while c.mu is held"
}

// flaggedEmitUnderLock emits a trace event while holding the lock.
func (c *cluster) flaggedEmitUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr.Emit("jobs", c.jobs) // want "Emit-charged tracing (Emit) while c.mu is held"
}

// flaggedSendUnderLock publishes to a channel inside the critical
// section: the send blocks until a receiver is ready, with the lock
// held the whole time.
func (c *cluster) flaggedSendUnderLock() {
	c.mu.Lock()
	c.done <- c.jobs // want "channel send while c.mu is held"
	c.mu.Unlock()
}

// flaggedRecvUnderLock blocks on a receive while holding the lock.
func (c *cluster) flaggedRecvUnderLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := <-c.done // want "channel receive while c.mu is held"
	return v
}

// flaggedNestedLock acquires a second mutex inside the first.
func (c *cluster) flaggedNestedLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.io.Lock() // want "acquires c.io while c.mu is held"
	c.io.Unlock()
}

// emitStats is clean on its own; the summary records that it emits.
func (c *cluster) emitStats() {
	c.tr.Emit("jobs", c.jobs)
}

// flaggedTransitiveEmit reaches the tracer through a same-package
// helper: the package summary charges the caller.
func (c *cluster) flaggedTransitiveEmit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emitStats() // want "call to emitStats, which emits trace events, while c.mu is held"
}

// okUnlockedIO releases the lock before the I/O: the flow-sensitive
// fact set is empty at the read.
func (c *cluster) okUnlockedIO(name string) {
	c.mu.Lock()
	c.jobs++
	c.mu.Unlock()
	c.fs.ReadAll(name)
}

// okLockedCompute does pure in-memory work under the lock.
func (c *cluster) okLockedCompute(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs += n
	return c.jobs
}

// okSequentialLocks never holds both mutexes at once.
func (c *cluster) okSequentialLocks() {
	c.mu.Lock()
	c.jobs++
	c.mu.Unlock()
	c.io.Lock()
	c.io.Unlock()
}

// suppressed records why one deliberate under-lock emit is acceptable.
func (c *cluster) suppressed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	//haten2:allow lockscope fixture demonstrating suppression of an under-lock emit
	c.tr.Emit("jobs", c.jobs)
}
