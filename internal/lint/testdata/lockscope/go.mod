module fixture.example/lockscope

go 1.22
