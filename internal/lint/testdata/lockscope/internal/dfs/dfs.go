// Stub of the simulated DFS: lockscope classifies calls into a package
// named dfs as I/O.
package dfs

type FS struct{}

func (*FS) ReadAll(name string) ([]byte, error) { return nil, nil }

func (*FS) Delete(name string) error { return nil }
