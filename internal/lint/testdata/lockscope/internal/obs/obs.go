// Stub of the tracer: lockscope classifies calls into a package named
// obs as Emit-charged tracing.
package obs

type Tracer struct{}

func (*Tracer) Emit(name string, args ...any) {}
