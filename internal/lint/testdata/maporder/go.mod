module fixture.example/maporder

go 1.22
