// Fixture for the maporder analyzer: map iteration inside emit-context
// functions (Map/Reduce/Combine literals and emit-callback functions).
package maporder

import "sort"

// job mimics the shape of mr.Job: function-typed Map/Reduce/Combine
// fields bound with composite literals.
type job struct {
	Map     func(rec any, emit func(int, float64))
	Reduce  func(key int, vals []float64, emit func(float64))
	Combine func(key int, vals []float64) []float64
}

// flaggedJob iterates maps inside Map and Reduce literals.
func flaggedJob(counts map[int]float64) job {
	return job{
		Map: func(rec any, emit func(int, float64)) {
			for k, v := range counts { // want "map iteration inside a Map function"
				emit(k, v)
			}
		},
		Reduce: func(key int, vals []float64, emit func(float64)) {
			acc := make(map[int]float64)
			for _, v := range vals {
				acc[key] += v
			}
			for _, v := range acc { // want "map iteration inside a Reduce function"
				emit(v)
			}
		},
	}
}

// flaggedEmitCallback is an emit-callback function declaration; the
// nested closure's map range is inside its body and flagged too.
func flaggedEmitCallback(m map[string]int, emit func(string)) {
	walk := func() {
		for k := range m { // want "map iteration inside emit-callback function flaggedEmitCallback"
			emit(k)
		}
	}
	walk()
}

// cleanSorted drains a map in sorted key order: the range is over a
// slice, so no special-casing is needed to pass.
func cleanSorted(m map[string]int, emit func(string)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k)
	}
}

// cleanFirstSeen accumulates in first-seen order, the engine's
// CrossMerge pattern: the map is only indexed, never ranged.
func cleanFirstSeen(pairs []int, emit func(int)) {
	seen := make(map[int]bool)
	var order []int
	for _, p := range pairs {
		if !seen[p] {
			seen[p] = true
			order = append(order, p)
		}
	}
	for _, p := range order {
		emit(p)
	}
}

// cleanOutsideContext ranges over a map with no emit callback in
// sight: maporder does not apply (floatsum governs accumulation).
func cleanOutsideContext(m map[int]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// suppressed documents an order-irrelevant drain with the allow syntax.
func suppressed(m map[int]bool, emit func(int)) {
	n := 0
	//haten2:allow maporder only the count is emitted, order cannot matter
	for range m {
		n++
	}
	emit(n)
}
