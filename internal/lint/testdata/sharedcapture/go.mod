module fixture.example/sharedcapture

go 1.22
