// Fixture for data races through closure captures: goroutines that
// write variables declared outside their own body.
package sharedcapture

import "sync"

// flaggedCounter increments a captured counter from every worker.
func flaggedCounter(workers int) int {
	var wg sync.WaitGroup
	total := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want "goroutine writes captured total without a lock held on every path"
		}()
	}
	wg.Wait()
	return total
}

// flaggedCompound races through a compound assignment.
func flaggedCompound(parts []int) int {
	var wg sync.WaitGroup
	sum := 0
	for _, p := range parts {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += p // want "goroutine writes captured sum without a lock held on every path"
		}()
	}
	wg.Wait()
	return sum
}

// flaggedMapWrite races on a shared map: map index writes are not
// partitionable the way slice index writes are.
func flaggedMapWrite(keys []string) map[string]int {
	var wg sync.WaitGroup
	m := make(map[string]int)
	for i, k := range keys {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			m[k] = i // want "goroutine writes captured m through a map index without a lock held on every path"
		}()
	}
	wg.Wait()
	return m
}

type stats struct {
	n int
}

// flaggedFieldWrite races on a field of a captured struct.
func flaggedFieldWrite(workers int) int {
	var wg sync.WaitGroup
	var st stats
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.n = 1 // want "goroutine writes captured st through a field without a lock held on every path"
		}()
	}
	wg.Wait()
	return st.n
}

// okIndexPartition writes disjoint slice elements: the per-index
// partitioning idiom the engine's runPool relies on.
func okIndexPartition(inputs []int, fn func(int) int) []int {
	var wg sync.WaitGroup
	res := make([]int, len(inputs))
	for i, in := range inputs {
		i, in := i, in
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = fn(in)
		}()
	}
	wg.Wait()
	return res
}

// okMutexGuarded holds the lock across every write.
func okMutexGuarded(workers int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// flaggedBranchGuard locks on only one path: the unguarded branch still
// races. A syntactic "a Lock appears in the body" check would have
// accepted this.
func flaggedBranchGuard(workers int, careful bool) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if careful {
				mu.Lock()
				defer mu.Unlock()
			}
			total++ // want "goroutine writes captured total without a lock held on every path"
		}()
	}
	wg.Wait()
	return total
}

// okLocal writes only the goroutine's own locals.
func okLocal(fn func(int) int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		acc := 0
		for i := 0; i < 8; i++ {
			acc = fn(acc)
		}
	}()
	wg.Wait()
}

// suppressed records why one deliberately benign write is acceptable.
func suppressed(done *bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		//haten2:allow sharedcapture fixture demonstrating suppression of a monotonic flag write
		*done = true
	}()
	wg.Wait()
}
