module fixture.example/dfsborrow

go 1.22
