// Fixture mirroring the DFS ownership boundary (internal/mr's
// helpers.go and job.go): slices handed to AppendBlock or borrowed via
// BlockView must not flow into the typed buffer pools.
package mr

type fs struct{}

func (fs) BlockView(name string) (any, int, bool, error) { return nil, 0, false, nil }

type writer struct{}

func (writer) AppendBlock(payload any, count int, size int64) {}

func putSlice[T any](s []T) {}

// Recycle mirrors mr.Recycle (same package name, so the release
// matcher treats it as the exported pool API).
func Recycle[T any](s []T) { putSlice(s) }

var theFS fs
var theWriter writer

// flaggedBlockView recycles a payload the DFS only lent out.
func flaggedBlockView(name string) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	if s, isT := payload.([]int64); isT {
		putSlice(s) // want "slice s aliases DFS block storage"
	}
}

// flaggedRecycleAfterAppend recycles a slice whose ownership already
// transferred to the file system.
func flaggedRecycleAfterAppend(items []int64) {
	theWriter.AppendBlock(items, len(items), 8*int64(len(items)))
	Recycle(items) // want "slice items aliases DFS block storage"
}

// flaggedResliceAlias recycles through a reslice of the borrowed value.
func flaggedResliceAlias(name string, n int) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	s, isT := payload.([]int64)
	if !isT {
		return
	}
	head := s[:n]
	putSlice(head) // want "slice head aliases DFS block storage"
}

// okCopyThenRecycle recycles a fresh copy, not the borrowed payload.
func okCopyThenRecycle(name string) {
	payload, n, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	if s, isT := payload.([]int64); isT {
		out := make([]int64, n)
		copy(out, s)
		putSlice(out)
	}
}

// okOwnedWrite hands a slice to the DFS and never touches it again.
func okOwnedWrite(items []int64) {
	theWriter.AppendBlock(items, len(items), 8*int64(len(items)))
}

// okSuppressed is the sanctioned replace-reclaim shape: the allow
// comment carries the justification.
func okSuppressed(name string) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	if s, isT := payload.([]int64); isT {
		//haten2:allow dfsborrow the file is deleted immediately after, no live borrows
		putSlice(s)
	}
}
