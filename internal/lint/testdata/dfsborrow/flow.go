// Fixture for the flow-sensitive half of dfsborrow: taint carried
// through bindings the syntactic predecessor could not see, and
// re-bindings that must clear it. The old three-pass check resolved
// identifiers only through Defs/Uses, so the per-clause objects of type
// switches (types.Info.Implicits) never picked up taint, and it had no
// kills, so a variable re-bound to fresh storage stayed tainted
// forever.
package mr

// flaggedTypeSwitchRecycle releases the per-clause binding of a type
// switch. `s` here is the clause's implicit object — invisible to
// Defs/Uses, so the old check provably missed this leak.
func flaggedTypeSwitchRecycle(name string) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	switch s := payload.(type) {
	case []int64:
		putSlice(s) // want "slice s aliases DFS block storage"
	case []int32:
		putSlice(s) // want "slice s aliases DFS block storage"
	default:
		_ = s
	}
}

// flaggedRangeElementRecycle collects borrowed payloads into a slice
// and recycles them element-wise through the range binding; taint has
// to flow container -> element across the loop header.
func flaggedRangeElementRecycle(names []string) {
	var views [][]int64
	for _, nm := range names {
		payload, _, ok, _ := theFS.BlockView(nm)
		if !ok {
			continue
		}
		if s, isT := payload.([]int64); isT {
			views = append(views, s)
		}
	}
	for _, v := range views {
		putSlice(v) // want "slice v aliases DFS block storage"
	}
}

// okRebindBeforeRecycle re-binds s to fresh storage before the release:
// the strong kill keeps this clean, where the kill-less predecessor
// raised a false positive.
func okRebindBeforeRecycle(name string, n int) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	s, isT := payload.([]int64)
	if !isT {
		return
	}
	useBorrow(s)
	s = make([]int64, n)
	putSlice(s)
}

// okTypeSwitchCopy copies inside the clause and recycles the copy, not
// the binding.
func okTypeSwitchCopy(name string) {
	payload, n, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	switch s := payload.(type) {
	case []int64:
		out := make([]int64, n)
		copy(out, s)
		putSlice(out)
	}
}

func useBorrow(s []int64) {}

// okDeferredCleanupWithBorrow pairs a borrow with an unrelated deferred
// cleanup. The exit block holds synthetic DeferRun nodes; the transfer
// function must unwrap them before any AST walk (this shape crashed the
// solver when DeferRun reached ast.Inspect directly).
func okDeferredCleanupWithBorrow(name string) {
	defer useBorrow(nil)
	payload, n, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	if s, isT := payload.([]int64); isT {
		out := make([]int64, n)
		copy(out, s)
		putSlice(out)
	}
}

// flaggedDeferredAppendThenRecycle transfers ownership in one deferred
// call and recycles in another that runs later (defers are LIFO): the
// taint must propagate across the DeferRun nodes of the exit block.
func flaggedDeferredAppendThenRecycle(items []int64) {
	defer putSlice(items) // want "slice items aliases DFS block storage"
	defer theWriter.AppendBlock(items, len(items), 8*int64(len(items)))
	useBorrow(nil)
}
