// Fixture for the flow-sensitive half of dfsborrow: taint carried
// through bindings the syntactic predecessor could not see, and
// re-bindings that must clear it. The old three-pass check resolved
// identifiers only through Defs/Uses, so the per-clause objects of type
// switches (types.Info.Implicits) never picked up taint, and it had no
// kills, so a variable re-bound to fresh storage stayed tainted
// forever.
package mr

// flaggedTypeSwitchRecycle releases the per-clause binding of a type
// switch. `s` here is the clause's implicit object — invisible to
// Defs/Uses, so the old check provably missed this leak.
func flaggedTypeSwitchRecycle(name string) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	switch s := payload.(type) {
	case []int64:
		putSlice(s) // want "slice s aliases DFS block storage"
	case []int32:
		putSlice(s) // want "slice s aliases DFS block storage"
	default:
		_ = s
	}
}

// flaggedRangeElementRecycle collects borrowed payloads into a slice
// and recycles them element-wise through the range binding; taint has
// to flow container -> element across the loop header.
func flaggedRangeElementRecycle(names []string) {
	var views [][]int64
	for _, nm := range names {
		payload, _, ok, _ := theFS.BlockView(nm)
		if !ok {
			continue
		}
		if s, isT := payload.([]int64); isT {
			views = append(views, s)
		}
	}
	for _, v := range views {
		putSlice(v) // want "slice v aliases DFS block storage"
	}
}

// okRebindBeforeRecycle re-binds s to fresh storage before the release:
// the strong kill keeps this clean, where the kill-less predecessor
// raised a false positive.
func okRebindBeforeRecycle(name string, n int) {
	payload, _, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	s, isT := payload.([]int64)
	if !isT {
		return
	}
	useBorrow(s)
	s = make([]int64, n)
	putSlice(s)
}

// okTypeSwitchCopy copies inside the clause and recycles the copy, not
// the binding.
func okTypeSwitchCopy(name string) {
	payload, n, ok, _ := theFS.BlockView(name)
	if !ok {
		return
	}
	switch s := payload.(type) {
	case []int64:
		out := make([]int64, n)
		copy(out, s)
		putSlice(out)
	}
}

func useBorrow(s []int64) {}
