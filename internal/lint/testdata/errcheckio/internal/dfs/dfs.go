// Package dfs mirrors the shape of the real simulated file system: its
// exported API is the guarded I/O surface of the errcheck-io analyzer.
package dfs

import "errors"

// FS is a stand-in file system.
type FS struct{}

// Writer is a stand-in file writer.
type Writer struct{}

// Create opens a new file.
func (*FS) Create(name string) (*Writer, error) {
	if name == "" {
		return nil, errors.New("dfs: empty name")
	}
	return &Writer{}, nil
}

// Delete removes a file.
func (*FS) Delete(name string) error {
	if name == "" {
		return errors.New("dfs: empty name")
	}
	return nil
}
