// Package dfs mirrors the shape of the real simulated file system: its
// exported API is the guarded I/O surface of the errcheck-io analyzer.
package dfs

import "errors"

// FS is a stand-in file system.
type FS struct{}

// Writer is a stand-in file writer.
type Writer struct{}

// Create opens a new file.
func (*FS) Create(name string) (*Writer, error) {
	if name == "" {
		return nil, errors.New("dfs: empty name")
	}
	return &Writer{}, nil
}

// Delete removes a file.
func (*FS) Delete(name string) error {
	if name == "" {
		return errors.New("dfs: empty name")
	}
	return nil
}

// ScrubReport mirrors the real scrub summary.
type ScrubReport struct{ ReplicasRestored int64 }

// VerifyFile checks every replica of every block of one file.
func (*FS) VerifyFile(name string) error {
	if name == "" {
		return errors.New("dfs: empty name")
	}
	return nil
}

// Scrub verifies and repairs the whole namespace.
func (*FS) Scrub() (ScrubReport, error) {
	return ScrubReport{}, nil
}
