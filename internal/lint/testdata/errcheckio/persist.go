// persist.go carries the model persistence API; its error returns are
// part of the errcheck-io analyzer's guarded surface by file name.
package errcheckio

import (
	"errors"
	"io"
)

// Save writes a model.
func Save(w io.Writer) error {
	if w == nil {
		return errors.New("nil writer")
	}
	return nil
}
