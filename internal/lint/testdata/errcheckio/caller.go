// Fixture for the errcheck-io analyzer: discarded errors from the dfs
// package and from persist.go APIs.
package errcheckio

import (
	"io"

	"fixture.example/errcheckio/internal/dfs"
)

// flaggedDiscards drop guarded errors on the floor in every way.
func flaggedDiscards(fs *dfs.FS, w io.Writer) {
	fs.Delete("part-0")        // want "error from dfs.Delete is discarded"
	_ = fs.Delete("part-1")    // want "error from dfs.Delete is assigned to _"
	_, _ = fs.Create("part-2") // want "error from dfs.Create is assigned to _"
	defer fs.Delete("part-3")  // want "error from dfs.Delete is discarded"
	fs.VerifyFile("part-0")    // want "error from dfs.VerifyFile is discarded"
	_, _ = fs.Scrub()          // want "error from dfs.Scrub is assigned to _"
	Save(w)                    // want "error from errcheckio.Save is discarded"
	_ = Save(w)                // want "error from errcheckio.Save is assigned to _"
}

// cleanChecked propagates or inspects every guarded error.
func cleanChecked(fs *dfs.FS, w io.Writer) error {
	f, err := fs.Create("part-4")
	if err != nil {
		return err
	}
	_ = f
	if err := Save(w); err != nil {
		return err
	}
	if err := fs.VerifyFile("part-4"); err != nil {
		return err
	}
	if _, err := fs.Scrub(); err != nil {
		return err
	}
	return fs.Delete("part-4")
}

// suppressed records why one best-effort cleanup may ignore its error.
func suppressed(fs *dfs.FS) {
	//haten2:allow errcheck-io fixture best-effort cleanup with nothing to report to
	_ = fs.Delete("scratch")
}
