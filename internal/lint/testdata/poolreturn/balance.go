// Fixture for the poolreturn analyzer: acquisitions that leak, are
// released, escape, or are suppressed.
package mr

func flaggedLeak(xs []int) int {
	buf := getSlice(len(xs)) // want "pooled buffer buf is acquired but never returned with putSlice"
	buf = append(buf, xs...)
	n := 0
	for _, v := range buf {
		n += v
	}
	return n
}

// flaggedLenRead reads the buffer's length into another variable;
// len is a read, not an escape, so the leak is still flagged.
func flaggedLenRead(capHint int) int {
	buf := getSlice(capHint) // want "pooled buffer buf is acquired but never returned with putSlice"
	n := len(buf)
	return n
}

func flaggedRawGet() {
	v := scratchPool.Get() // want "pooled buffer v is acquired but never returned with Put"
	if v == nil {
		println("pool empty")
	}
}

func cleanPut(xs []int) int {
	buf := getSlice(len(xs))
	buf = append(buf, xs...)
	total := 0
	for _, v := range buf {
		total += v
	}
	putSlice(buf)
	return total
}

func cleanReturn(capHint int) []int {
	buf := getSlice(capHint)
	return buf
}

type batch struct{ rows []int }

// cleanEscape stores the buffer into a longer-lived location; the
// obligation transfers to batch's owner.
func cleanEscape(b *batch, capHint int) {
	buf := getSlice(capHint)
	b.rows = buf
}

func cleanMapRoundTrip(keys []int) int {
	seen := getMap()
	for _, k := range keys {
		seen[k]++
	}
	n := len(seen)
	putMap(seen)
	return n
}

func cleanRawRoundTrip() {
	v := scratchPool.Get()
	scratchPool.Put(v)
}

// suppressed records why one deliberate leak is acceptable.
func suppressed(capHint int) {
	//haten2:allow poolreturn fixture demonstrating suppression of a deliberate leak
	buf := getSlice(capHint)
	if len(buf) != 0 {
		println("recycled")
	}
}
