// Fixture mirroring internal/serve's scratch pools: the serving
// layer's request objects and per-query score buffers come from raw
// sync.Pools behind type assertions, and poolreturn covers the serve
// package so every Get must reach a matching Put on every path —
// a leaked request or score buffer degrades the steady-state
// zero-allocation query path back to plain allocation.
package serve

import "sync"

type request struct {
	subject, predicate int64
	k                  int
}

var reqPool = sync.Pool{New: func() any { return new(request) }}

var scorePool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

// cleanQuery is the TopKObjects shape: acquire the request, use it for
// the round trip, and return it to the pool before leaving.
func cleanQuery(subject, predicate int64, k int) int {
	req := reqPool.Get().(*request)
	req.subject, req.predicate, req.k = subject, predicate, k
	n := req.k
	reqPool.Put(req)
	return n
}

// flaggedLeak forgets the Put: the request pool degrades to plain
// allocation and every query allocates a fresh request again.
func flaggedLeak(subject int64) int64 {
	req := reqPool.Get().(*request) // want "pooled buffer req is acquired but never returned with Put"
	req.subject = subject
	s := req.subject
	return s
}

// flaggedBranchLeak releases the scratch on the happy path only; the
// early validation return leaks it, which only the path-sensitive
// analysis can see.
func flaggedBranchLeak(rows int) int {
	scratch := scorePool.Get().(*[]float64) // want "returned with Put on some paths but leaks on others"
	if rows < 0 {
		return 0
	}
	n := cap(*scratch)
	scorePool.Put(scratch)
	return n
}

// cleanMembership mirrors Membership's scratch discipline: acquired
// and released in the same function, no return between Get and Put.
func cleanMembership(loadings []float64) float64 {
	scratch := scorePool.Get().(*[]float64)
	*scratch = (*scratch)[:0]
	*scratch = append(*scratch, loadings...)
	var most float64
	for _, v := range *scratch {
		if v > most {
			most = v
		}
	}
	scorePool.Put(scratch)
	return most
}
