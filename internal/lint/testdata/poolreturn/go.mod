module fixture.example/poolreturn

go 1.22
