// Fixture for the shuffle-v2 pool shapes: raw sync.Pool acquisitions
// behind a type assertion (core's codec scratch maps) and the exported
// Acquire/Recycle slab API.
package mr

import "sync"

var codecScratchPool = sync.Pool{New: func() any { return make(map[[3]int64]float64) }}

// Acquire mirrors mr.Acquire; the package is named mr, so the
// cross-package kind table applies to it.
func Acquire[T any](n int) []T { return make([]T, 0, n) }

// Recycle mirrors mr.Recycle.
func Recycle[T any](s []T) {}

// flaggedAssertedGet leaks a type-asserted sync.Pool acquisition.
func flaggedAssertedGet(keys [][3]int64) {
	t := codecScratchPool.Get().(map[[3]int64]float64) // want "pooled buffer t is acquired but never returned with Put"
	for _, k := range keys {
		t[k]++
	}
	println(len(t))
}

// okAssertedGetDeferredPut is the codec-scratch idiom: clear and return
// in a deferred closure.
func okAssertedGetDeferredPut(keys [][3]int64) int {
	t := codecScratchPool.Get().(map[[3]int64]float64)
	defer func() {
		clear(t)
		codecScratchPool.Put(t)
	}()
	for _, k := range keys {
		t[k]++
	}
	return len(t)
}

// flaggedAcquireLeak drops an engine slab on the floor.
func flaggedAcquireLeak(n int) {
	s := Acquire[int64](n) // want "pooled buffer s is acquired but never returned with Recycle"
	println(cap(s))
}

// okAcquireRecycle closes the slab loop.
func okAcquireRecycle(n int) {
	s := Acquire[int64](n)
	for i := 0; i < n; i++ {
		s = append(s, int64(i))
	}
	Recycle(s)
}

// okAcquireEscapes hands the slab to a sink that now owns it (the
// WriteFileOwned pattern: the error-checked call receives the slab and
// the obligation transfers with it).
func okAcquireEscapes(n int) error {
	s := Acquire[int64](n)
	if err := sink(s); err != nil {
		return err
	}
	return nil
}

func sink(s []int64) error { return nil }
