// Fixture mirroring the arena grouper's get/put pair (internal/mr's
// group.go): acquisitions that leak, are released, or escape.
package mr

import "sync"

type groupArena struct {
	keys []int
	vals []int
}

var arenaPool = sync.Pool{New: func() any { return new(groupArena) }}

func getGroupArena(keyCap int) *groupArena {
	if v := arenaPool.Get(); v != nil {
		return v.(*groupArena)
	}
	return &groupArena{keys: make([]int, 0, keyCap)}
}

func putGroupArena(g *groupArena) {
	g.keys = g.keys[:0]
	g.vals = g.vals[:0]
	arenaPool.Put(g)
}

func flaggedArenaLeak(keyCap int) int {
	g := getGroupArena(keyCap) // want "pooled buffer g is acquired but never returned with putGroupArena"
	n := len(g.keys)
	return n
}

// flaggedArenaUse exercises the grouper through method-like reads only;
// plain use is not a release, so the leak is still flagged.
func flaggedArenaUse(pairs []int) {
	g := getGroupArena(8) // want "pooled buffer g is acquired but never returned with putGroupArena"
	for range pairs {
		println(cap(g.vals))
	}
}

func cleanArenaRoundTrip(pairs []int) int {
	g := getGroupArena(len(pairs))
	for _, p := range pairs {
		g.vals = append(g.vals, p)
	}
	n := len(g.vals)
	putGroupArena(g)
	return n
}

func cleanArenaReturn(keyCap int) *groupArena {
	g := getGroupArena(keyCap)
	return g
}

type reduceState struct{ arena *groupArena }

// cleanArenaEscape stores the grouper into a longer-lived location; the
// release obligation transfers to reduceState's owner.
func cleanArenaEscape(st *reduceState, keyCap int) {
	g := getGroupArena(keyCap)
	st.arena = g
}

// suppressedArena records why one deliberate leak is acceptable.
func suppressedArena(keyCap int) {
	//haten2:allow poolreturn fixture demonstrating suppression of an arena leak
	g := getGroupArena(keyCap)
	println(cap(g.keys))
}
