// Fixture for the path-sensitive half of poolreturn: leaks that only
// exist on SOME control-flow paths. The flow-insensitive predecessor
// accepted any release anywhere in the function, so every flagged case
// in this file was invisible to it.
package mr

// flaggedBranchLeak releases only under the condition; the else path
// falls off the end still holding the buffer. The old check saw "a
// putSlice mentioning buf somewhere" and stayed quiet.
func flaggedBranchLeak(xs []int, flush bool) int {
	buf := getSlice(len(xs)) // want "pooled buffer buf is returned with putSlice on some paths but leaks on others"
	buf = append(buf, xs...)
	n := len(buf)
	if flush {
		putSlice(buf)
	}
	return n
}

// flaggedEarlyReturnLeak releases on the fall-through path but leaks
// through the guard's early return.
func flaggedEarlyReturnLeak(xs []int) int {
	buf := getSlice(len(xs)) // want "pooled buffer buf is returned with putSlice on some paths but leaks on others"
	if len(xs) == 0 {
		return 0
	}
	buf = append(buf, xs...)
	n := len(buf)
	putSlice(buf)
	return n
}

// cleanBothArms releases on every path: the must-analysis finds the
// obligation settled at the exit no matter which arm ran.
func cleanBothArms(xs []int, flush bool) {
	buf := getSlice(len(xs))
	if flush {
		putSlice(buf)
		return
	}
	buf = append(buf, xs...)
	putSlice(buf)
}

// cleanDeferredRelease registers the release before any branching, so
// every normal exit runs it.
func cleanDeferredRelease(xs []int, flush bool) int {
	buf := getSlice(len(xs))
	defer putSlice(buf)
	if flush {
		return 0
	}
	buf = append(buf, xs...)
	return len(buf)
}

// cleanPanicPathLeak holds the buffer across a panic: panicking paths
// never reach the exit block, so only the normal path is charged — and
// that one releases.
func cleanPanicPathLeak(xs []int) {
	buf := getSlice(len(xs))
	if len(xs) > 1<<20 {
		panic("unreasonable batch")
	}
	putSlice(buf)
}

// cleanLoopRelease settles the obligation inside the loop that always
// runs the release before the function can exit normally.
func cleanLoopRelease(rounds int) {
	for i := 0; i < rounds; i++ {
		buf := getSlice(8)
		putSlice(buf)
	}
}
