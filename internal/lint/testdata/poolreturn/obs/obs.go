// Fixture mirroring internal/obs's pooled exporter buffers: the
// poolreturn analyzer also covers the obs package, where getBuf must be
// paired with putBuf.
package obs

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putBuf(b *[]byte) { bufPool.Put(b) }

// flaggedLeak acquires a pooled buffer, only reads it, and forgets to
// return it.
func flaggedLeak() int {
	buf := getBuf() // want "pooled buffer buf is acquired but never returned with putBuf"
	n := cap(*buf)
	return n
}

// cleanExport is the WriteChromeTrace shape: acquire, render, release.
func cleanExport(spans []string) int {
	buf := getBuf()
	for _, s := range spans {
		*buf = append(*buf, s...)
	}
	n := len(*buf)
	putBuf(buf)
	return n
}

// cleanEscape hands the buffer to the caller, transferring the
// release obligation.
func cleanEscape() *[]byte {
	buf := getBuf()
	*buf = append(*buf, '[')
	return buf
}
