// Fixture pools mirroring internal/mr's typed buffer pools. The
// poolreturn analyzer is gated on the package name "mr".
package mr

import "sync"

var slicePool = sync.Pool{New: func() any { return []int(nil) }}

var scratchPool = sync.Pool{New: func() any { return new([64]byte) }}

func getSlice(capHint int) []int {
	if v := slicePool.Get(); v != nil {
		return v.([]int)[:0]
	}
	return make([]int, 0, capHint)
}

func putSlice(s []int) { slicePool.Put(s[:0]) }

func getMap() map[int]int { return make(map[int]int, 64) }

func putMap(m map[int]int) {}
