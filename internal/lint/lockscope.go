package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope bounds what the engine does inside a critical section. The
// cluster's Cluster.mu, the DFS's FS.mu, and the tracer's Tracer.mu
// each guard in-memory state that every job touches; holding one of
// them across DFS I/O, a channel operation, or Emit-charged tracing
// turns the lock into the simulator's global bottleneck, and acquiring
// a second lock while one is held is how lock-order inversions (and
// with an RWMutex, self-deadlocks) enter a codebase that today has a
// strict leaf-lock discipline.
//
// The check is a forward may-analysis over the function's CFG: facts
// are the set of mutexes possibly held (keyed by the receiver chain,
// e.g. "c.mu"). Lock/RLock gens the key, Unlock/RUnlock kills it, and a
// deferred unlock kills at the exit block's DeferRun, so everything
// between `mu.Lock(); defer mu.Unlock()` and the return is analyzed as
// under the lock. While any lock may be held, the analyzer flags
// channel operations and Lock calls directly, classifies cross-package
// calls by callee package (dfs → I/O, obs → Emit-charged tracing), and
// consults a light same-package summary — computed to a fixpoint over
// the package's call graph — so a helper that transitively acquires a
// lock, performs DFS I/O, or emits trace events charges its caller
// (`record` holding c.mu and calling traceJob, which calls tr.Emit, is
// the grounding case). Calls inside nested function literals are not
// charged to the enclosing critical section: a literal runs when
// invoked, not where defined.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no DFS I/O, channel operations, Emit-charged tracing, or nested lock acquisition while a mutex is held",
	Flow: true,
	Run:  runLockScope,
}

// lockSummary is the may-behavior of one same-package function,
// propagated transitively over the package's internal call graph.
type lockSummary struct {
	acquires bool // may Lock/RLock a mutex
	dfsIO    bool // may call into the dfs package
	chanOps  bool // may send on, receive from, or close a channel
	emits    bool // may call into the obs tracer
}

func (s *lockSummary) or(o lockSummary) bool {
	before := *s
	s.acquires = s.acquires || o.acquires
	s.dfsIO = s.dfsIO || o.dfsIO
	s.chanOps = s.chanOps || o.chanOps
	s.emits = s.emits || o.emits
	return *s != before
}

func runLockScope(p *Pass) {
	sums := lockSummaries(p)
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			checkLockScope(p, fb.body, sums)
		}
	}
}

// lockSummaries computes per-function may-behavior for the package's
// declared functions: direct facts first, then a fixpoint over
// same-package calls so transitive behavior (record → traceJob →
// tr.Emit) reaches the outermost caller.
func lockSummaries(p *Pass) map[*types.Func]*lockSummary {
	sums := map[*types.Func]*lockSummary{}
	type declBody struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []declBody
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			s := &lockSummary{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					s.chanOps = true
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						s.chanOps = true
					}
				case *ast.RangeStmt:
					if isChanType(p.TypeOf(n.X)) {
						s.chanOps = true
					}
				case *ast.CallExpr:
					if mutexLockKey(p, n, true) != "" {
						s.acquires = true
					}
					// Cross-package effects only: dfs and obs calling their
					// own helpers under their own locks is their design, not
					// an effect to propagate to callers holding other locks.
					if callee := p.FuncFor(n); callee != nil && callee.Pkg() != nil && callee.Pkg() != p.Pkg.Pkg {
						switch callee.Pkg().Name() {
						case "dfs":
							s.dfsIO = true
						case "obs":
							s.emits = true
						}
					}
					if isCloseCall(p, n) {
						s.chanOps = true
					}
				}
				return true
			})
			sums[fn] = s
			decls = append(decls, declBody{fn: fn, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			ast.Inspect(d.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := p.FuncFor(call)
				if callee == nil {
					return true
				}
				if cs, ok := sums[callee]; ok && sums[d.fn].or(*cs) {
					changed = true
				}
				return true
			})
		}
	}
	return sums
}

func checkLockScope(p *Pass, body *ast.BlockStmt, sums map[*types.Func]*lockSummary) {
	// Skip bodies that never lock: the fact set stays empty throughout.
	locks := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && mutexLockKey(p, call, true) != "" {
			locks = true
		}
		return !locks
	})
	if !locks {
		return
	}
	cfg := BuildCFG(body)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[string]{},
		Transfer: func(n ast.Node, f Fact) Fact { return lockTransfer(p, n, f) },
		Boundary: map[string]bool(nil),
	}).Solve()
	reported := map[token.Pos]bool{}
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			held := f.(map[string]bool)
			if len(held) == 0 {
				return
			}
			holding := sortedKeys(held)[0]
			switch n := n.(type) {
			case *DeferRun:
				// The deferred call runs with the exit-time lock set; its
				// own unlock is the transfer, not a charged operation.
				return
			case *CaseBind:
				return
			case *RangeHead:
				if isChanType(p.TypeOf(n.Range.X)) && !reported[n.Pos()] {
					reported[n.Pos()] = true
					p.Reportf(n.Range.Pos(),
						"channel receive while %s is held: the critical section blocks on channel readiness", holding)
				}
				return
			}
			inspectShallow(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.SendStmt:
					if !reported[x.Pos()] {
						reported[x.Pos()] = true
						p.Reportf(x.Pos(),
							"channel send while %s is held: the critical section blocks on channel readiness", holding)
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW && !reported[x.Pos()] {
						reported[x.Pos()] = true
						p.Reportf(x.Pos(),
							"channel receive while %s is held: the critical section blocks on channel readiness", holding)
					}
				case *ast.CallExpr:
					reportLockedCall(p, x, held, holding, sums, reported)
				}
				return true
			})
		})
	}
}

// reportLockedCall classifies one call made while locks are held.
func reportLockedCall(p *Pass, call *ast.CallExpr, held map[string]bool, holding string, sums map[*types.Func]*lockSummary, reported map[token.Pos]bool) {
	if reported[call.Pos()] {
		return
	}
	if key := mutexLockKey(p, call, true); key != "" {
		reported[call.Pos()] = true
		p.Reportf(call.Pos(),
			"acquires %s while %s is held: nested lock acquisition risks deadlock", key, holding)
		return
	}
	if mutexLockKey(p, call, false) != "" {
		return // the unlock itself is the kill, not a charged operation
	}
	if isCloseCall(p, call) {
		reported[call.Pos()] = true
		p.Reportf(call.Pos(),
			"channel close while %s is held: the critical section publishes to unknown receivers", holding)
		return
	}
	fn := p.FuncFor(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Cross-package classification only: the dfs and obs packages call
	// their own helpers under their own locks by design, and those are
	// judged by the same-package summaries below.
	if fn.Pkg() != p.Pkg.Pkg {
		switch fn.Pkg().Name() {
		case "dfs":
			reported[call.Pos()] = true
			p.Reportf(call.Pos(),
				"DFS I/O (%s) while %s is held: the lock serializes file-system latency", fn.Name(), holding)
			return
		case "obs":
			reported[call.Pos()] = true
			p.Reportf(call.Pos(),
				"Emit-charged tracing (%s) while %s is held: trace work belongs outside the critical section", fn.Name(), holding)
			return
		}
	}
	if s, ok := sums[fn]; ok && fn.Pkg() == p.Pkg.Pkg {
		var what string
		switch {
		case s.acquires:
			what = "may acquire a lock"
		case s.dfsIO:
			what = "performs DFS I/O"
		case s.chanOps:
			what = "operates on channels"
		case s.emits:
			what = "emits trace events"
		default:
			return
		}
		reported[call.Pos()] = true
		p.Reportf(call.Pos(),
			"call to %s, which %s, while %s is held", fn.Name(), what, holding)
	}
}

// lockTransfer updates the held-lock set for one CFG node.
func lockTransfer(p *Pass, n ast.Node, f Fact) Fact {
	m := f.(map[string]bool)
	switch n := n.(type) {
	case *DeferRun:
		// Deferred unlocks release at function exit.
		if key := mutexLockKey(p, n.Defer.Call, false); key != "" {
			m = setDel(m, key)
		}
		return m
	case *ast.DeferStmt:
		return m // registration has no effect; DeferRun carries it
	case *CaseBind, *RangeHead:
		return m
	}
	inspectShallow(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := mutexLockKey(p, call, true); key != "" {
			m = setAdd(m, key)
		} else if key := mutexLockKey(p, call, false); key != "" {
			m = setDel(m, key)
		}
		return true
	})
	return m
}

// mutexLockKey classifies a call as a mutex acquire (lock=true:
// Lock/RLock) or release (lock=false: Unlock/RUnlock) and returns the
// canonical receiver chain ("c.mu"), or "" when it is neither.
func mutexLockKey(p *Pass, call *ast.CallExpr, lock bool) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if lock {
		if name != "Lock" && name != "RLock" {
			return ""
		}
	} else {
		if name != "Unlock" && name != "RUnlock" {
			return ""
		}
	}
	if !isMutexType(p.TypeOf(sel.X)) {
		return ""
	}
	return chainKey(sel.X)
}

// chainKey renders a receiver chain of identifiers and field selections
// ("c.mu", "st.fs.mu") for use as a lock key; other shapes yield "".
func chainKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := chainKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return chainKey(e.X)
		}
	case *ast.StarExpr:
		return chainKey(e.X)
	}
	return ""
}

// isMutexType matches sync.Mutex, sync.RWMutex, and pointers to them.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isChanType matches channel types.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isCloseCall matches the close built-in.
func isCloseCall(p *Pass, call *ast.CallExpr) bool {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "close" {
		return false
	}
	_, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin)
	return builtin
}
