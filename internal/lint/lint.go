// Package lint is haten2's project-specific static-analysis suite.
//
// The MapReduce engine's headline property — job counters (jobs run,
// shuffle records, DFS reads) that are exactly reproducible run-to-run
// and across GOMAXPROCS settings — rests on a handful of coding
// invariants that Go does not enforce: no map-iteration-order-dependent
// emission inside mappers and reducers, no floating-point summation in
// map order, no wall-clock reads or ambient randomness in the
// simulation, no silently dropped I/O errors, and disciplined reuse of
// pooled buffers. Package lint encodes each invariant as an Analyzer
// and is wired into `go test ./...` through its self-test, so a change
// that reintroduces a nondeterministic code shape fails tier-1 CI even
// when no behavioral test happens to cover it.
//
// Findings are suppressed line-by-line with
//
//	//haten2:allow <check> <reason>
//
// placed on, or on the line directly above, the offending statement.
// The reason is mandatory; an allow comment without one is itself a
// finding.
//
// The suite is built only on the standard library (go/ast, go/parser,
// go/token, go/types) because the module is dependency-free and must
// stay that way.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked, non-test package of the module under
// analysis.
type Package struct {
	// PkgPath is the full import path.
	PkgPath string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one invariant check. Run inspects a package and reports
// findings through the pass.
type Analyzer struct {
	// Name is the check name used in output and in allow comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Flow marks the analyzers that run on the CFG/dataflow engine
	// (path-sensitive facts); the rest are syntactic AST walks. Surfaced
	// by `haten2lint -list` so readers know which findings depend on
	// control flow.
	Flow bool
	// Run analyzes one package.
	Run func(p *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Check string
	Pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// FuncFor resolves the called function object of a call expression,
// looking through parenthesized and generic-instantiated callees.
// It returns nil for calls through function-typed variables, built-ins,
// and type conversions.
func (p *Pass) FuncFor(call *ast.CallExpr) *types.Func {
	e := ast.Unparen(call.Fun)
	if ix, ok := e.(*ast.IndexExpr); ok { // generic instantiation f[T](...)
		e = ix.X
	} else if ix, ok := e.(*ast.IndexListExpr); ok {
		e = ix.X
	}
	var id *ast.Ident
	switch fn := e.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	f, _ := obj.(*types.Func)
	return f
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		FloatSum,
		WallClock,
		UnseededRand,
		ErrcheckIO,
		PoolReturn,
		DFSBorrow,
		LockScope,
		GoLeak,
		SharedCapture,
	}
}

// RunSuite runs every analyzer over every package, resolves
// //haten2:allow suppressions (reporting malformed ones), and returns
// the surviving findings sorted by position.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	valid := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		valid[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Check: a.Name, Pkg: pkg, diags: &diags})
		}
	}
	var allows []allow
	for _, pkg := range pkgs {
		a, bad := collectAllows(pkg, valid)
		allows = append(allows, a...)
		diags = append(diags, bad...)
	}
	diags = filterAllowed(diags, allows)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
