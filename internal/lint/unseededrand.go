package lint

import (
	"go/ast"
	"go/types"
)

// UnseededRand bans the global math/rand (and math/rand/v2) generators.
// The package-level functions draw from a process-wide, automatically
// seeded source, so initial factors, generated tensors, and sampled
// noise would differ on every run — unreproducible experiments and
// flaky golden tests. Every RNG must be constructed from an explicit
// seed (rand.New(rand.NewSource(seed))), which also keeps concurrent
// drivers from contending on the global source's lock.
var UnseededRand = &Analyzer{
	Name: "unseededrand",
	Doc:  "no global math/rand functions; construct RNGs from an explicit seed",
	Run:  runUnseededRand,
}

// randConstructors are the package-level functions that build an
// explicitly seeded generator rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runUnseededRand(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.FuncFor(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *Rand
			}
			if randConstructors[fn.Name()] {
				return true
			}
			p.Reportf(call.Pos(),
				"%s.%s draws from the process-global RNG: construct one with rand.New(rand.NewSource(seed)) so runs are reproducible", path, fn.Name())
			return true
		})
	}
}
