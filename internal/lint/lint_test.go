package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Each analyzer has a golden fixture module under testdata/<check>/
// (check name with dashes dropped). Lines expected to be flagged carry
// a trailing
//
//	// want "substring of the diagnostic message"
//
// comment; the harness demands a one-to-one match between want
// comments and surviving diagnostics, so both false positives and
// false negatives fail the test — including suppressed cases, which
// must produce no diagnostic and therefore carry no want comment.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", strings.ReplaceAll(a.Name, "-", ""))
			pkgs, err := Load(dir)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			wants := collectWants(t, pkgs)
			diags := RunSuite(pkgs, []*Analyzer{a})
			matchWants(t, wants, diags)
		})
	}
}

// fixtureWant is one parsed "// want" expectation.
type fixtureWant struct {
	file    string
	line    int
	substr  string
	matched bool
}

// collectWants parses every want comment of the loaded fixture.
func collectWants(t *testing.T, pkgs []*Package) []*fixtureWant {
	t.Helper()
	var wants []*fixtureWant
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					body, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue
					}
					rest, ok := strings.CutPrefix(strings.TrimSpace(body), "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					substr, err := strconv.Unquote(strings.TrimSpace(rest))
					if err != nil {
						t.Fatalf("%s:%d: unparseable want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					wants = append(wants, &fixtureWant{file: pos.Filename, line: pos.Line, substr: substr})
				}
			}
		}
	}
	return wants
}

// matchWants pairs diagnostics with want comments one-to-one.
func matchWants(t *testing.T, wants []*fixtureWant, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.substr)
		}
	}
}

// TestSuppressionParsing covers the malformed-allow diagnostics, which
// cannot be expressed as want comments (the want text would parse as
// the allow reason). It also verifies that the "allow" pseudo-check is
// not itself suppressible and that a well-formed allow really filters
// the finding on the next line.
func TestSuppressionParsing(t *testing.T) {
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/suppress\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "clock.go", `package suppress

import "time"

func bare() time.Time {
	//haten2:allow
	return time.Now()
}

func unknown() time.Time {
	//haten2:allow bogus because the check name does not exist
	return time.Now()
}

func reasonless() time.Time {
	//haten2:allow wallclock
	return time.Now()
}

func justified() time.Time {
	//haten2:allow wallclock reasons are recorded and this one is fine
	return time.Now()
}
`)
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := RunSuite(pkgs, Analyzers())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:[%s]", d.Line, d.Check))
	}
	// Lines 6, 11, 16 hold the three bad allow comments; each leaves
	// its time.Now on the next line unsuppressed. Line 21's allow is
	// well-formed, so line 22's time.Now is filtered.
	want := []string{
		"6:[allow]", "7:[wallclock]",
		"11:[allow]", "12:[wallclock]",
		"16:[allow]", "17:[wallclock]",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
	assertMessage(t, diags, 6, "malformed suppression")
	assertMessage(t, diags, 11, `unknown check "bogus"`)
	assertMessage(t, diags, 16, "needs a reason")
}

func assertMessage(t *testing.T, diags []Diagnostic, line int, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Line == line {
			if !strings.Contains(d.Message, substr) {
				t.Errorf("line %d: message %q does not contain %q", line, d.Message, substr)
			}
			return
		}
	}
	t.Errorf("no diagnostic on line %d", line)
}

func writeFixtureFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
