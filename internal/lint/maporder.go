package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder enforces the engine's central ordering invariant: code that
// feeds an emit callback must not iterate a Go map, because map
// iteration order is randomized per run and anything emitted (or
// accumulated, or counted) in that order breaks the bit-reproducibility
// of job counters and floating-point totals.
//
// A function is in "emit context" when it is
//
//   - a function literal bound to a Map, Reduce, or Combine field of a
//     composite literal (the mr.Job / mr.Input plumbing), or
//   - any function — declaration or literal — that takes a parameter
//     named emit of function type.
//
// Inside such functions (including their nested closures) every
// `range` over a map is flagged, with one carve-out: a loop that does
// nothing but collect the keys into a slice that the same function then
// sorts (the collect-sort-iterate idiom) is order-independent by
// construction and passes. The other sanctioned fix — recording keys in
// a first-seen-order slice alongside the map, the pattern CrossMerge
// and PairwiseMergeN use — ranges over a slice and needs no carve-out.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no map iteration inside Map/Reduce/Combine or emit-callback functions",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	seen := make(map[*ast.RangeStmt]bool)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			for _, ctx := range emitContexts(n) {
				ast.Inspect(ctx.body, func(m ast.Node) bool {
					rs, ok := m.(*ast.RangeStmt)
					if !ok || seen[rs] {
						return true
					}
					if _, isMap := p.TypeOf(rs.X).(*types.Map); !isMap {
						return true
					}
					seen[rs] = true
					if isSortedKeyCollection(p, rs, ctx.body) {
						return true
					}
					p.Reportf(rs.Pos(),
						"map iteration inside %s: emission and accumulation order must not depend on map order; iterate sorted keys or a first-seen-order key slice", ctx.why)
					return true
				})
			}
			return true
		})
	}
}

// emitCtx is one function body that must stay map-order-independent.
type emitCtx struct {
	body *ast.BlockStmt
	why  string
}

// emitContexts returns the emit-context function bodies n opens.
func emitContexts(n ast.Node) []emitCtx {
	switch n := n.(type) {
	case *ast.CompositeLit:
		var ctxs []emitCtx
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || (key.Name != "Map" && key.Name != "Reduce" && key.Name != "Combine") {
				continue
			}
			if lit, ok := kv.Value.(*ast.FuncLit); ok {
				ctxs = append(ctxs, emitCtx{lit.Body, "a " + key.Name + " function"})
			}
		}
		return ctxs
	case *ast.FuncDecl:
		if n.Body != nil && hasEmitParam(n.Type) {
			return []emitCtx{{n.Body, "emit-callback function " + n.Name.Name}}
		}
	case *ast.FuncLit:
		if hasEmitParam(n.Type) {
			return []emitCtx{{n.Body, "an emit-callback function literal"}}
		}
	}
	return nil
}

// isSortedKeyCollection recognizes the collect-sort-iterate idiom: the
// range body is exactly one append of loop variables into a slice
// variable, and the surrounding context body sorts that slice (via
// package sort or slices). Such a loop is order-independent because
// nothing observes the collection order.
func isSortedKeyCollection(p *Pass, rs *ast.RangeStmt, ctx *ast.BlockStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); !builtin {
		return false // a shadowed append could observe the order
	}
	if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || first.Name != dst.Name {
		return false
	}
	obj := p.Pkg.Info.Uses[dst]
	if obj == nil {
		obj = p.Pkg.Info.Defs[dst]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(ctx, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.FuncFor(c)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		if !strings.Contains(fn.Name(), "Sort") && !sortFuncs[fn.Name()] {
			return true
		}
		if exprMentions(p, c.Args, obj) {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// sortFuncs are the sort-package entry points not containing "Sort".
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Stable": true,
}

// hasEmitParam reports whether a function type declares a parameter
// named emit of function type.
func hasEmitParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if _, ok := field.Type.(*ast.FuncType); !ok {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "emit" {
				return true
			}
		}
	}
	return false
}
