package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFuncCFG parses one function declaration and builds its CFG.
func buildFuncCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// succIndexes returns the successor indexes of a block, for assertions.
func succIndexes(b *Block) []int {
	out := make([]int, 0, len(b.Succs))
	for _, s := range b.Succs {
		out = append(out, s.Index)
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildFuncCFG(t, "x := 1\n_ = x")
	if cfg.Entry.Index != 0 || cfg.Exit.Index != 1 {
		t.Fatalf("entry/exit indexes = %d/%d, want 0/1", cfg.Entry.Index, cfg.Exit.Index)
	}
	if len(cfg.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want 2", len(cfg.Entry.Nodes))
	}
	if got := succIndexes(cfg.Entry); len(got) != 1 || got[0] != cfg.Exit.Index {
		t.Errorf("entry succs = %v, want [exit]", got)
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildFuncCFG(t, `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// Entry holds the init and the condition, then branches two ways.
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(cfg.Entry.Succs))
	}
	then, els := cfg.Entry.Succs[0], cfg.Entry.Succs[1]
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Fatalf("then/else do not rejoin at one block")
	}
	join := then.Succs[0]
	if len(join.Nodes) != 1 {
		t.Errorf("join block holds %d nodes, want 1 (_ = x)", len(join.Nodes))
	}
	if len(join.Succs) != 1 || join.Succs[0] != cfg.Exit {
		t.Errorf("join does not flow to exit")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	cfg := buildFuncCFG(t, `if true {
	println("yes")
}`)
	// The condition block must have an edge around the then-branch.
	var toExit int
	for _, s := range cfg.Entry.Succs {
		for _, s2 := range append(s.Succs, s) {
			_ = s2
		}
	}
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		if b == cfg.Exit {
			toExit++
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry)
	if len(cfg.Entry.Succs) != 2 {
		t.Errorf("if-without-else cond block has %d succs, want 2", len(cfg.Entry.Succs))
	}
	if toExit != 1 {
		t.Errorf("exit reached %d times in walk, want 1", toExit)
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg := buildFuncCFG(t, `for i := 0; i < 10; i++ {
	println(i)
}
println("done")`)
	// Find the head: the block holding the condition with two succs
	// (body and after).
	var head *Block
	for _, b := range cfg.Blocks {
		if len(b.Succs) == 2 && len(b.Preds) == 2 { // entry + post edge
			head = b
			break
		}
	}
	if head == nil {
		t.Fatalf("no loop-head block with 2 preds and 2 succs found")
	}
	body := head.Succs[0]
	// The body must eventually lead back to the head (through the post
	// block).
	backEdge := false
	for _, s := range body.Succs {
		if s == head {
			backEdge = true
		}
		for _, s2 := range s.Succs {
			if s2 == head {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Errorf("loop body does not reach the head again")
	}
}

func TestCFGForeverLoopUnreachableAfter(t *testing.T) {
	cfg := buildFuncCFG(t, `for {
	println("spin")
}
println("never")`)
	reach := map[int]bool{}
	for _, b := range cfg.Reachable() {
		reach[b.Index] = true
	}
	if reach[cfg.Exit.Index] {
		t.Errorf("exit is reachable across a for{} with no break")
	}
}

func TestCFGForeverLoopBreak(t *testing.T) {
	cfg := buildFuncCFG(t, `for {
	break
}`)
	reach := map[int]bool{}
	for _, b := range cfg.Reachable() {
		reach[b.Index] = true
	}
	if !reach[cfg.Exit.Index] {
		t.Errorf("break does not make the exit reachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	cfg := buildFuncCFG(t, `xs := []int{1}
for _, v := range xs {
	println(v)
}`)
	var head *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*RangeHead); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no RangeHead marker found")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d succs, want 2 (body, after)", len(head.Succs))
	}
	body := head.Succs[0]
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Errorf("range body does not loop back to the head")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildFuncCFG(t, `switch x := 1; x {
case 1:
	println("one")
	fallthrough
case 2:
	println("two")
default:
	println("other")
}`)
	// Clause blocks are created in order right after entry and exit;
	// the fallthrough clause must flow into the next clause block, not
	// to the join.
	var one, two *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				switch lit.Value {
				case `"one"`:
					one = b
				case `"two"`:
					two = b
				}
			}
		}
	}
	if one == nil || two == nil {
		t.Fatalf("case clause blocks not found")
	}
	if len(one.Succs) != 1 || one.Succs[0] != two {
		t.Errorf("fallthrough clause flows to %v, want the next clause", succIndexes(one))
	}
	// A switch with a default has no direct cond→join edge.
	cond := cfg.Entry
	for _, s := range cond.Succs {
		if s == cfg.Exit {
			t.Errorf("switch with default has a cond edge skipping every clause")
		}
	}
}

func TestCFGTypeSwitchCaseBind(t *testing.T) {
	cfg := buildFuncCFG(t, `var v any = 1
switch s := v.(type) {
case int:
	_ = s
case string:
	_ = s
}`)
	binds := 0
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if cb, ok := n.(*CaseBind); ok {
				binds++
				if cb.Switch == nil || cb.Clause == nil {
					t.Errorf("CaseBind with nil fields")
				}
				if len(b.Nodes) == 0 || b.Nodes[0] != n {
					t.Errorf("CaseBind is not the first node of its block")
				}
			}
		}
	}
	if binds != 2 {
		t.Errorf("found %d CaseBind markers, want 2", binds)
	}
	// No default: the subject block needs an edge around the clauses.
	var subj *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(ast.Stmt); ok {
				if _, isAssign := as.(*ast.AssignStmt); isAssign && b != cfg.Entry {
					subj = b
				}
			}
		}
	}
	_ = subj // clause edges verified via reachability below
	if got := len(cfg.Reachable()); got < 5 {
		t.Errorf("only %d reachable blocks, want the clauses and join reachable", got)
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildFuncCFG(t, `ch := make(chan int)
select {
case v := <-ch:
	println(v)
default:
	println("empty")
}`)
	// The entry (holding the select) must branch to one block per
	// clause, each of which rejoins.
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("select has %d clause edges, want 2", len(cfg.Entry.Succs))
	}
	a, b := cfg.Entry.Succs[0], cfg.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Errorf("select clauses do not rejoin at one block")
	}
	// The receive clause's comm statement is in its block.
	foundRecv := false
	for _, n := range a.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			if _, isRecv := as.Rhs[0].(*ast.UnaryExpr); isRecv {
				foundRecv = true
			}
		}
	}
	if !foundRecv {
		t.Errorf("receive comm statement missing from its clause block")
	}
}

func TestCFGReturnEdgesToExit(t *testing.T) {
	cfg := buildFuncCFG(t, `if true {
	return
}
println("after")`)
	returns := 0
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
				found := false
				for _, s := range b.Succs {
					if s == cfg.Exit {
						found = true
					}
				}
				if !found {
					t.Errorf("return block does not edge to exit")
				}
			}
		}
	}
	if returns != 1 {
		t.Fatalf("found %d returns, want 1", returns)
	}
}

func TestCFGDeferExitActions(t *testing.T) {
	cfg := buildFuncCFG(t, `defer println("first")
defer println("second")
println("body")`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(cfg.Defers))
	}
	if len(cfg.Exit.Nodes) != 2 {
		t.Fatalf("exit holds %d nodes, want 2 DeferRuns", len(cfg.Exit.Nodes))
	}
	// Reverse registration order: second runs first.
	first, ok := cfg.Exit.Nodes[0].(*DeferRun)
	if !ok {
		t.Fatalf("exit node is %T, want *DeferRun", cfg.Exit.Nodes[0])
	}
	if first.Defer != cfg.Defers[1] {
		t.Errorf("exit runs defers in registration order, want reverse")
	}
}

func TestCFGPanicDeadEnd(t *testing.T) {
	cfg := buildFuncCFG(t, `if true {
	panic("boom")
}
println("after")`)
	var panicBlock *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				panicBlock = b
			}
		}
	}
	if panicBlock == nil {
		t.Fatalf("panic block not found")
	}
	if len(panicBlock.Succs) != 0 {
		t.Errorf("panic block has %d succs, want 0 (no normal-exit path)", len(panicBlock.Succs))
	}
	// The non-panicking path still reaches exit.
	reach := map[int]bool{}
	for _, b := range cfg.Reachable() {
		reach[b.Index] = true
	}
	if !reach[cfg.Exit.Index] {
		t.Errorf("exit unreachable despite the non-panicking branch")
	}
}

func TestCFGLabeledContinueBreak(t *testing.T) {
	cfg := buildFuncCFG(t, `outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
		println(i, j)
	}
}`)
	// Both labeled branches must leave the inner loop: the CFG must
	// reach exit, and no block may keep a dangling branch (every
	// continue/break resolved to an edge).
	reach := map[int]bool{}
	for _, b := range cfg.Reachable() {
		reach[b.Index] = true
	}
	if !reach[cfg.Exit.Index] {
		t.Errorf("labeled break does not make exit reachable")
	}
}

func TestCFGGoto(t *testing.T) {
	cfg := buildFuncCFG(t, `i := 0
loop:
if i < 3 {
	i++
	goto loop
}`)
	reach := map[int]bool{}
	for _, b := range cfg.Reachable() {
		reach[b.Index] = true
	}
	if !reach[cfg.Exit.Index] {
		t.Errorf("goto loop CFG never reaches exit")
	}
	// The goto must produce a back edge: some reachable block must have
	// a successor with a smaller index (the label target).
	back := false
	for _, b := range cfg.Reachable() {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != cfg.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("goto produced no back edge")
	}
}

func TestCFGBlocksDeterministic(t *testing.T) {
	body := `x := 0
for i := 0; i < 4; i++ {
	switch {
	case i == 0:
		x++
	default:
		x--
	}
}
_ = x`
	shape := func(c *CFG) string {
		s := ""
		for _, b := range c.Blocks {
			s += fmt.Sprintf("%d:%d->%v;", b.Index, len(b.Nodes), succIndexes(b))
		}
		return s
	}
	a := shape(buildFuncCFG(t, body))
	for i := 0; i < 5; i++ {
		if b := shape(buildFuncCFG(t, body)); b != a {
			t.Fatalf("CFG shape differs between builds:\n%s\n%s", a, b)
		}
	}
}
