package lint

import (
	"go/ast"
	"strings"
)

// WallClock keeps real time out of the simulation. The engine's
// "running time" is the calibrated cost model's SimSeconds — a pure
// function of job counters — so a time.Now (or Since/Until sugar)
// anywhere in the engine, plans, or drivers smuggles host speed into
// results that must be machine-independent. Wall-clock reads are
// legitimate exactly where wall time is the measured quantity: the
// benchmark harness (internal/bench, cmd/haten2bench) and tests (which
// the loader already excludes).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now outside the bench harness, the socket transport, and tests",
	Run:  runWallClock,
}

// wallClockAllowed are import-path suffixes where wall-clock reads are
// the point. internal/mrproc and cmd/haten2worker are transport, not
// simulation: their clock reads drive socket deadlines and membership
// heartbeats, which may change wall-clock time and liveness decisions
// but never job counters or output bytes (the cross-backend conformance
// suite pins that).
var wallClockAllowed = []string{"internal/bench", "cmd/haten2bench", "internal/mrproc", "cmd/haten2worker"}

func runWallClock(p *Pass) {
	for _, suffix := range wallClockAllowed {
		if strings.HasSuffix(p.Pkg.PkgPath, suffix) {
			return
		}
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.FuncFor(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(),
					"time.%s reads the wall clock: simulated results must depend only on job counters (allowed in internal/bench, cmd/haten2bench, and tests)", fn.Name())
			}
			return true
		})
	}
}
