package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak keeps the engine's worker fan-out joined. The simulator's
// determinism rests on every spawned goroutine finishing before the
// result it contributes to is read: runPool's workers (the one
// sanctioned spawn site) are balanced by a WaitGroup Add before the
// spawn, a deferred Done inside the body, and a Wait on every path
// after the loop. A goroutine with no such balance either leaks —
// accumulating workers across jobs until the scheduler's interleaving
// becomes load-dependent — or races the read of whatever it writes.
//
// For each `go` statement the analyzer derives the join key from the
// goroutine body: a `wg.Done()` names a WaitGroup, a send on (or close
// of) a channel names the channel. It then demands, on the spawner's
// CFG, that the key's Add must have run on every path reaching the
// spawn (forward must-analysis) and that the matching join — wg.Wait,
// or a receive from the channel — runs on every path from the spawn to
// the exit (backward must-analysis over the two-point lattice). Paths
// that panic or os.Exit are not charged. A goroutine whose body signals
// nothing at all is flagged outright: nothing can join it. Deliberately
// detached goroutines carry a //haten2:allow with the argument for why
// the leak is bounded.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement is balanced by a WaitGroup Add/Done pair or a joining channel receive on all paths",
	Flow: true,
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			checkGoLeak(p, fb.body)
		}
	}
}

// joinKind says how a goroutine signals completion.
type joinKind int

const (
	joinNone joinKind = iota
	joinWaitGroup
	joinChannel
)

func checkGoLeak(p *Pass, body *ast.BlockStmt) {
	var spawns []*ast.GoStmt
	inspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	cfg := BuildCFG(body)
	for _, g := range spawns {
		kind, key := spawnJoinKey(p, g)
		switch kind {
		case joinNone:
			p.Reportf(g.Pos(),
				"goroutine signals no completion: no WaitGroup Done or channel send in its body, so nothing can join it")
		case joinWaitGroup:
			if !mustAddBefore(p, cfg, g, key) {
				p.Reportf(g.Pos(),
					"goroutine calls %s.Done but %s.Add does not run on every path before the spawn: the Wait undercounts", key, key)
			}
			if !mustJoinAfter(p, cfg, g, func(n ast.Node) bool { return containsWaitCall(p, n, key) }) {
				p.Reportf(g.Pos(),
					"goroutine calls %s.Done but %s.Wait does not run on every path after the spawn: the goroutine can outlive its work", key, key)
			}
		case joinChannel:
			if !mustJoinAfter(p, cfg, g, func(n ast.Node) bool { return containsChanReceive(p, n, key) }) {
				p.Reportf(g.Pos(),
					"goroutine sends on %s but no receive from %s runs on every path after the spawn: the send blocks or the result is dropped", key, key)
			}
		}
	}
}

// spawnJoinKey inspects the spawned call for its completion signal: a
// WaitGroup whose Done the body calls, or a channel the body sends on
// or closes. For a non-literal callee the arguments are scanned instead
// — passing &wg hands the callee the Done obligation.
func spawnJoinKey(p *Pass, g *ast.GoStmt) (joinKind, string) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		kind, key := joinNone, ""
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if kind != joinNone {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if k := waitGroupMethodKey(p, n, "Done"); k != "" {
					kind, key = joinWaitGroup, k
				}
				if isCloseCall(p, n) && len(n.Args) == 1 {
					if k := chainKey(n.Args[0]); k != "" && isChanType(p.TypeOf(n.Args[0])) {
						kind, key = joinChannel, k
					}
				}
			case *ast.SendStmt:
				if k := chainKey(n.Chan); k != "" {
					kind, key = joinChannel, k
				}
			}
			return kind == joinNone
		})
		return kind, key
	}
	for _, arg := range g.Call.Args {
		e := ast.Unparen(arg)
		if isWaitGroupType(p.TypeOf(e)) {
			if k := chainKey(e); k != "" {
				return joinWaitGroup, k
			}
		}
		if isChanType(p.TypeOf(e)) {
			if k := chainKey(e); k != "" {
				return joinChannel, k
			}
		}
	}
	return joinNone, ""
}

// mustAddBefore solves the forward must-analysis "key.Add has run" and
// reads the fact immediately before the spawn statement.
func mustAddBefore(p *Pass, cfg *CFG, g *ast.GoStmt, key string) bool {
	sol := (&Flow{
		CFG: cfg,
		Lat: MustSetLattice[string]{},
		Transfer: func(n ast.Node, f Fact) Fact {
			s := f.(MustSet[string])
			if _, ok := n.(*DeferRun); ok {
				return s
			}
			if containsWaitGroupCall(p, n, key, "Add") {
				return mustAdd(s, key)
			}
			return s
		},
		Boundary: MustSet[string]{M: map[string]bool{}},
	}).Solve()
	ok := false
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			if n == ast.Node(g) && f.(MustSet[string]).Has(key) {
				ok = true
			}
		})
	}
	return ok
}

// mustJoinAfter solves the backward must-analysis "every path from here
// reaches a joining node" and reads the fact immediately after the
// spawn statement.
func mustJoinAfter(p *Pass, cfg *CFG, g *ast.GoStmt, joins func(ast.Node) bool) bool {
	sol := (&Flow{
		CFG: cfg,
		Lat: BoolLattice{All: true},
		Transfer: func(n ast.Node, f Fact) Fact {
			if joins(n) {
				return true
			}
			return f
		},
		Backward: true,
		Boundary: false,
	}).Solve()
	ok := false
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			// Backward replay hands the fact holding after the node.
			if n == ast.Node(g) && f.(bool) {
				ok = true
			}
		})
	}
	return ok
}

// containsWaitCall reports whether n contains key.Wait(); a DeferRun
// wrapping `defer wg.Wait()` joins at exit and counts.
func containsWaitCall(p *Pass, n ast.Node, key string) bool {
	return containsWaitGroupCall(p, n, key, "Wait")
}

// containsWaitGroupCall reports whether n (outside nested literals)
// calls the named method on the WaitGroup identified by key.
func containsWaitGroupCall(p *Pass, n ast.Node, key, method string) bool {
	if dr, ok := n.(*DeferRun); ok {
		n = dr.Defer.Call
	}
	switch n.(type) {
	case *CaseBind, *RangeHead:
		return false
	}
	found := false
	inspectShallow(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if waitGroupMethodKey(p, call, method) == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsChanReceive reports whether n receives from the channel
// identified by key: a <- expression or a range over it.
func containsChanReceive(p *Pass, n ast.Node, key string) bool {
	switch n := n.(type) {
	case *DeferRun:
		return containsChanReceive(p, n.Defer.Call, key)
	case *CaseBind:
		return false
	case *RangeHead:
		return isChanType(p.TypeOf(n.Range.X)) && chainKey(n.Range.X) == key
	}
	found := false
	inspectShallow(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if ue, ok := x.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			if chainKey(ue.X) == key && isChanType(p.TypeOf(ue.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// waitGroupMethodKey returns the receiver chain of a call to the named
// sync.WaitGroup method, or "".
func waitGroupMethodKey(p *Pass, call *ast.CallExpr, method string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	if !isWaitGroupType(p.TypeOf(sel.X)) {
		return ""
	}
	return chainKey(sel.X)
}

// isWaitGroupType matches sync.WaitGroup and pointers to it.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
