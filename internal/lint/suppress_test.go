package lint

import (
	"fmt"
	"strings"
	"testing"
)

// suppressDiags loads a one-file throwaway module and runs the full
// suite, returning "line:[check]" strings for the surviving findings.
func suppressDiags(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	writeFixtureFile(t, dir, "go.mod", "module fixture.example/anchor\n\ngo 1.22\n")
	writeFixtureFile(t, dir, "anchor.go", src)
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var got []string
	for _, d := range RunSuite(pkgs, Analyzers()) {
		got = append(got, fmt.Sprintf("%d:[%s]", d.Line, d.Check))
	}
	return got
}

// A comment on its own line anchors to the statement below even when
// that statement spans several lines and the finding is reported on one
// of its inner lines.
func TestAllowCoversMultiLineStatement(t *testing.T) {
	got := suppressDiags(t, `package anchor

import "time"

func stamps() []time.Time {
	//haten2:allow wallclock simulation boundary, both stamps feed a log line only
	return []time.Time{
		time.Now(),
		time.Now(),
	}
}
`)
	if len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

// A trailing allow on the first line of a multi-line statement covers
// the whole statement, not just its own line.
func TestTrailingAllowCoversStatementSpan(t *testing.T) {
	got := suppressDiags(t, `package anchor

import "time"

func stamps() []time.Time {
	return []time.Time{ //haten2:allow wallclock simulation boundary, stamps feed a log line only
		time.Now(),
	}
}
`)
	if len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

// Stacked allows all skip past each other to the same statement, so one
// line carrying findings of two checks needs no contortions.
func TestStackedAllows(t *testing.T) {
	got := suppressDiags(t, `package anchor

import (
	"math/rand"
	"time"
)

func seedling() int64 {
	//haten2:allow wallclock seeding the demo generator from the clock is the point
	//haten2:allow unseededrand demo generator, reproducibility is not wanted here
	return time.Now().UnixNano() + rand.Int63()
}
`)
	if len(got) != 0 {
		t.Fatalf("diagnostics = %v, want none", got)
	}
}

// An allow on the func declaration covers the whole function body: a
// function-level allow.
func TestFunctionLevelAllow(t *testing.T) {
	got := suppressDiags(t, `package anchor

import "time"

//haten2:allow wallclock demo helper, every line of it reads the clock on purpose
func clockParade() time.Duration {
	start := time.Now()
	for time.Since(start) < time.Millisecond {
	}
	return time.Since(start)
}

func unprotected() time.Time {
	return time.Now()
}
`)
	want := []string{"14:[wallclock]"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
}

// A function-level allow silences only its named check; other findings
// inside the function survive.
func TestFunctionLevelAllowIsPerCheck(t *testing.T) {
	got := suppressDiags(t, `package anchor

import (
	"math/rand"
	"time"
)

//haten2:allow wallclock demo helper, the clock read is the point
func mixed() int64 {
	n := rand.Int63()
	return time.Now().UnixNano() + n
}
`)
	want := []string{"10:[unseededrand]"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
}

// An allow naming no registered check is itself a finding and
// suppresses nothing.
func TestAllowUnknownCheckIsAFinding(t *testing.T) {
	got := suppressDiags(t, `package anchor

import "time"

func stamped() time.Time {
	//haten2:allow wall-clock hyphenated name does not exist
	return time.Now()
}
`)
	want := []string{"6:[allow]", "7:[wallclock]"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
}
