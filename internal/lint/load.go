package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks every non-test package under root, which
// must be a module root (contain go.mod). The whole module is loaded so
// cross-package references resolve; callers filter the returned slice
// when analyzing a subset. Standard-library imports are type-checked
// from GOROOT source, so loading needs no network, no GOPATH
// installation, and no third-party loader.
//
// Test files (_test.go) are deliberately excluded: the determinism
// invariants guard the engine and its drivers, while tests are the
// place where wall-clock reads and ad-hoc iteration are legitimate.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	raw, err := parseModule(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(raw)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(fset, "source", nil)
	loaded := make(map[string]*Package, len(raw))
	var pkgs []*Package
	for _, path := range order {
		p := raw[path]
		pkg, err := typeCheck(fset, p, std, loaded)
		if err != nil {
			return nil, err
		}
		loaded[path] = pkg
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// parsedPkg is a parsed-but-unchecked package.
type parsedPkg struct {
	pkgPath string
	dir     string
	files   []*ast.File
	names   []string // file names, parallel to files
	imports map[string]bool
}

// parseModule walks root and parses one package per directory holding
// Go sources, skipping testdata, vendor, and hidden directories.
func parseModule(fset *token.FileSet, root, modPath string) (map[string]*parsedPkg, error) {
	pkgs := make(map[string]*parsedPkg)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		p, err := parseDir(fset, path, root, modPath)
		if err != nil {
			return err
		}
		if p != nil {
			pkgs[p.pkgPath] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}
	return pkgs, nil
}

// parseDir parses the non-test sources of one directory, or returns
// (nil, nil) when it holds none.
func parseDir(fset *token.FileSet, dir, root, modPath string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := modPath
	if rel != "." {
		pkgPath = modPath + "/" + filepath.ToSlash(rel)
	}
	p := &parsedPkg{pkgPath: pkgPath, dir: dir, imports: make(map[string]bool)}
	pkgName := ""
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = file.Name.Name
		} else if file.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: multiple packages %s and %s", dir, pkgName, file.Name.Name)
		}
		p.files = append(p.files, file)
		p.names = append(p.names, fn)
		for _, imp := range file.Imports {
			p.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

// topoOrder sorts packages so every intra-module import precedes its
// importer, failing on cycles.
func topoOrder(pkgs map[string]*parsedPkg) ([]string, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = gray
		deps := make([]string, 0, len(pkgs[path].imports))
		for imp := range pkgs[path].imports {
			if _, ok := pkgs[imp]; ok {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the packages
// checked so far and everything else through the GOROOT source
// importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p.Pkg, nil
	}
	return m.std.Import(path)
}

// typeCheck runs the type checker over one parsed package.
func typeCheck(fset *token.FileSet, p *parsedPkg, std types.Importer, loaded map[string]*Package) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		// Implicits carries the per-clause objects of type switches
		// (`switch s := x.(type)`), which Defs and Uses never see; the
		// flow-sensitive analyzers need them to track taint through
		// clause bindings.
		Implicits: make(map[ast.Node]types.Object),
	}
	var errs []error
	cfg := types.Config{
		Importer: &moduleImporter{std: std, local: loaded},
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	tpkg, err := cfg.Check(p.pkgPath, fset, p.files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.pkgPath, errors.Join(errs...))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.pkgPath, err)
	}
	return &Package{
		PkgPath: p.pkgPath,
		Dir:     p.dir,
		Fset:    fset,
		Files:   p.files,
		Pkg:     tpkg,
		Info:    info,
	}, nil
}
