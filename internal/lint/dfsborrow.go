package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DFSBorrow polices the ownership boundary between the engine's buffer
// pools and the simulated DFS that shuffle v2's zero-copy paths opened
// up. AppendBlock transfers a slice's ownership *to* the file system
// (readers borrow it through BlockView and MapInput), and BlockView
// lends a payload *out* without transferring anything. Either way the
// local function no longer owns the storage, so handing it to
// putSlice/Recycle would let the pools recycle bytes a DFS file still
// serves — silent data corruption the determinism tests only catch long
// after the fact, if at all. The one sanctioned exception is
// WriteFileOwned's replace path, which reclaims the payload of a file
// it is about to delete; that site carries a //haten2:allow with the
// argument for why no live borrow can exist.
var DFSBorrow = &Analyzer{
	Name: "dfsborrow",
	Doc:  "slices owned by or borrowed from the DFS (AppendBlock/BlockView) are not returned to the buffer pools",
	Run:  runDFSBorrow,
}

func runDFSBorrow(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDFSBorrow(p, fd)
		}
	}
}

func checkDFSBorrow(p *Pass, fd *ast.FuncDecl) {
	// Pass 1: seed the tainted set with values crossing the DFS
	// ownership boundary — every identifier assigned from a BlockView
	// call and every identifier handed to AppendBlock.
	tainted := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && isDFSCall(p, n.Rhs[0], "BlockView") {
				for _, lhs := range n.Lhs {
					if obj := identObj(p, lhs); obj != nil {
						tainted[obj] = lhs.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "AppendBlock" {
				for _, arg := range n.Args {
					if obj := identObj(p, arg); obj != nil {
						tainted[obj] = arg.Pos()
					}
				}
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}
	// Pass 2: propagate through aliasing assignments (type assertions,
	// reslices, plain copies) to a fixpoint — `old, isT :=
	// payload.([]T)` must carry payload's taint into old.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				src := taintSource(p, rhs, tainted)
				if src == 0 {
					continue
				}
				lhs := as.Lhs[min(i, len(as.Lhs)-1)]
				if obj := identObj(p, lhs); obj != nil {
					if _, seen := tainted[obj]; !seen {
						tainted[obj] = src
						changed = true
					}
				}
			}
			return true
		})
	}
	// Pass 3: flag pool releases of tainted values.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolRelease(p, call) {
			return true
		}
		for _, arg := range call.Args {
			for obj := range tainted {
				if exprMentions(p, []ast.Expr{arg}, obj) {
					p.Reportf(call.Pos(),
						"slice %s aliases DFS block storage (AppendBlock/BlockView): recycling it lets the pools reuse bytes a file still serves",
						obj.Name())
					return true
				}
			}
		}
		return true
	})
}

// isDFSCall matches a call to a method with the given name (BlockView
// lives on *dfs.FS; matching by selector keeps the check independent of
// how callers reach the file system).
func isDFSCall(p *Pass, e ast.Expr, method string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method
}

// taintSource reports the position of the tainted object rhs aliases,
// or 0. Aliasing follows the same shapes as poolreturn's escape check:
// identifiers, type assertions, reslices, address-taking.
func taintSource(p *Pass, rhs ast.Expr, tainted map[types.Object]token.Pos) token.Pos {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[e]; obj != nil {
			if pos, ok := tainted[obj]; ok {
				return pos
			}
		}
	case *ast.TypeAssertExpr:
		return taintSource(p, e.X, tainted)
	case *ast.SliceExpr:
		return taintSource(p, e.X, tainted)
	case *ast.UnaryExpr:
		return taintSource(p, e.X, tainted)
	case *ast.StarExpr:
		return taintSource(p, e.X, tainted)
	}
	return 0
}

// isPoolRelease matches the typed-pool release calls: the mr-internal
// putSlice and the exported mr.Recycle.
func isPoolRelease(p *Pass, call *ast.CallExpr) bool {
	fn := p.FuncFor(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	return (name == "putSlice" || name == "Recycle") && fn.Pkg().Name() == "mr"
}

// identObj resolves an identifier expression to its object (nil for
// blanks and non-identifiers).
func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}
