package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DFSBorrow polices the ownership boundary between the engine's buffer
// pools and the simulated DFS that shuffle v2's zero-copy paths opened
// up. AppendBlock transfers a slice's ownership *to* the file system
// (readers borrow it through BlockView and MapInput), and BlockView
// lends a payload *out* without transferring anything. Either way the
// local function no longer owns the storage, so handing it to
// putSlice/Recycle would let the pools recycle bytes a DFS file still
// serves — silent data corruption the determinism tests only catch long
// after the fact, if at all.
//
// The check is a forward taint analysis over the function's CFG: facts
// are the set of variables currently aliasing DFS-owned storage.
// BlockView results and AppendBlock arguments gen taint; aliasing
// assignments (type assertions, reslices, appends, range bindings, and
// the per-clause implicits of type switches) propagate it; re-binding a
// variable to a fresh value kills it. The flow-insensitive predecessor
// had neither kills nor the type-switch and range bindings, so it
// flagged released-after-rebind false positives and missed leaks
// through `switch s := payload.(type)` entirely (Defs/Uses never see
// the per-clause object — only types.Info.Implicits does).
//
// The one sanctioned exception is WriteFileOwned's replace path, which
// reclaims the payload of a file it is about to delete; that site
// carries a //haten2:allow with the argument for why no live borrow can
// exist.
var DFSBorrow = &Analyzer{
	Name: "dfsborrow",
	Doc:  "slices owned by or borrowed from the DFS (AppendBlock/BlockView) are not returned to the buffer pools",
	Flow: true,
	Run:  runDFSBorrow,
}

func runDFSBorrow(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			checkDFSBorrow(p, fb.body)
		}
	}
}

// borrowFlow is the per-function taint problem: facts are sets of
// objects aliasing DFS-owned storage.
type borrowFlow struct {
	p *Pass
}

func checkDFSBorrow(p *Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: a function with no DFS boundary crossing cannot
	// taint anything, so skip the CFG entirely. Nested literals are
	// scanned too — an AppendBlock inside a closure taints captured
	// variables the enclosing function may later release.
	crosses := false
	ast.Inspect(body, func(n ast.Node) bool {
		if crosses {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "BlockView" || sel.Sel.Name == "AppendBlock" {
					crosses = true
				}
			}
		}
		return !crosses
	})
	if !crosses {
		return
	}
	bf := &borrowFlow{p: p}
	cfg := BuildCFG(body)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[types.Object]{},
		Transfer: bf.transfer,
		Boundary: map[types.Object]bool(nil),
	}).Solve()
	// Replay every reachable block and flag pool releases whose argument
	// aliases tainted storage at that point. A deferred release appears
	// twice (registration and DeferRun at exit); the position key
	// deduplicates, and either occurrence with taint in force is a leak.
	reported := map[token.Pos]bool{}
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			m := f.(map[types.Object]bool)
			if len(m) == 0 {
				return
			}
			node := n
			switch marker := n.(type) {
			case *DeferRun:
				node = marker.Defer
			case *CaseBind, *RangeHead:
				return // headers hold no calls
			}
			ast.Inspect(node, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok || !isPoolRelease(p, call) || reported[call.Pos()] {
					return true
				}
				var hits []types.Object
				for _, arg := range call.Args {
					for obj := range m {
						if exprMentions(p, []ast.Expr{arg}, obj) {
							hits = append(hits, obj)
						}
					}
				}
				if len(hits) == 0 {
					return true
				}
				sort.Slice(hits, func(i, j int) bool { return hits[i].Pos() < hits[j].Pos() })
				reported[call.Pos()] = true
				p.Reportf(call.Pos(),
					"slice %s aliases DFS block storage (AppendBlock/BlockView): recycling it lets the pools reuse bytes a file still serves",
					hits[0].Name())
				return true
			})
		})
	}
}

// transfer applies one CFG node to the taint set.
func (bf *borrowFlow) transfer(n ast.Node, f Fact) Fact {
	m := f.(map[types.Object]bool)
	p := bf.p
	switch n := n.(type) {
	case *ast.AssignStmt:
		m = bf.taintAppendBlockArgs(n, m)
		// Binding the results of a BlockView call taints every result.
		if len(n.Rhs) == 1 && isDFSCall(p, n.Rhs[0], "BlockView") {
			for _, lhs := range n.Lhs {
				if obj := identObj(p, lhs); obj != nil {
					m = setAdd(m, obj)
				}
			}
			return m
		}
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			return m
		}
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// Tuple form: one producer for all variables. `old, isT :=
			// payload.([]T)` taints old when payload is tainted; any other
			// call re-binds every variable to a fresh value.
			tainted := bf.aliases(n.Rhs[0], m)
			for _, lhs := range n.Lhs {
				m = bf.rebind(m, lhs, tainted)
			}
			return m
		}
		for i, rhs := range n.Rhs {
			if i >= len(n.Lhs) {
				break
			}
			m = bf.rebind(m, n.Lhs[i], bf.aliases(rhs, m))
		}
		return m
	case *CaseBind:
		// `switch s := payload.(type)`: each clause introduces its own
		// object for s (types.Info.Implicits), bound from the subject.
		obj := p.Pkg.Info.Implicits[n.Clause]
		if obj == nil {
			return m
		}
		if bf.aliases(typeSwitchSubject(n.Switch), m) {
			return setAdd(m, obj)
		}
		return setDel(m, obj)
	case *DeferRun:
		// The deferred call runs at function exit; its body can hand
		// slices to AppendBlock like straight-line code, but the marker
		// itself is synthetic — unwrap it before any AST walk.
		return bf.taintAppendBlockArgs(n.Defer, m)
	case *RangeHead:
		// Ranging over a tainted container taints the value (and key)
		// bindings: element-wise releases of collected views must be
		// visible.
		tainted := bf.aliases(n.Range.X, m)
		if n.Range.Tok != token.ASSIGN && n.Range.Tok != token.DEFINE {
			return m
		}
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			if e != nil {
				m = bf.rebind(m, e, tainted)
			}
		}
		return m
	default:
		return bf.taintAppendBlockArgs(n, m)
	}
}

// rebind sets or clears the taint of the variable lhs binds: a tainted
// source propagates, a fresh source strongly kills (the variable can no
// longer alias the old storage after `s = make(...)`).
func (bf *borrowFlow) rebind(m map[types.Object]bool, lhs ast.Expr, tainted bool) map[types.Object]bool {
	obj := identObj(bf.p, lhs)
	if obj == nil {
		return m
	}
	if tainted {
		return setAdd(m, obj)
	}
	return setDel(m, obj)
}

// taintAppendBlockArgs taints every identifier handed to AppendBlock
// anywhere in n, including inside nested function literals (the closure
// captures the enclosing function's variable, so the taint is the
// enclosing function's problem too).
func (bf *borrowFlow) taintAppendBlockArgs(n ast.Node, m map[types.Object]bool) map[types.Object]bool {
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "AppendBlock" {
			for _, arg := range call.Args {
				if obj := identObj(bf.p, arg); obj != nil {
					m = setAdd(m, obj)
				}
			}
		}
		return true
	})
	return m
}

// aliases reports whether evaluating rhs yields a value sharing storage
// with a tainted object. Aliasing follows the same shapes as
// poolreturn's escape check — identifiers, type assertions, reslices,
// indexing, address-taking — plus append (the result may share the
// tainted backing array) and composite literals holding tainted values.
func (bf *borrowFlow) aliases(rhs ast.Expr, m map[types.Object]bool) bool {
	p := bf.p
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		obj := p.Pkg.Info.Uses[e]
		return obj != nil && m[obj]
	case *ast.TypeAssertExpr:
		return bf.aliases(e.X, m)
	case *ast.SliceExpr:
		return bf.aliases(e.X, m)
	case *ast.UnaryExpr:
		return bf.aliases(e.X, m)
	case *ast.StarExpr:
		return bf.aliases(e.X, m)
	case *ast.IndexExpr:
		return bf.aliases(e.X, m)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if bf.aliases(el, m) {
				return true
			}
		}
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && fn.Name == "append" {
			if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); builtin {
				for _, a := range e.Args {
					if bf.aliases(a, m) {
						return true
					}
				}
			}
		}
	}
	return false
}

// typeSwitchSubject extracts the asserted expression of a type switch:
// the e of `switch s := e.(type)` or `switch e.(type)`.
func typeSwitchSubject(s *ast.TypeSwitchStmt) ast.Expr {
	var x ast.Expr
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		x = a.Rhs[0]
	case *ast.ExprStmt:
		x = a.X
	default:
		return nil
	}
	ta, ok := ast.Unparen(x).(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// isDFSCall matches a call to a method with the given name (BlockView
// lives on *dfs.FS; matching by selector keeps the check independent of
// how callers reach the file system).
func isDFSCall(p *Pass, e ast.Expr, method string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method
}

// isPoolRelease matches the typed-pool release calls: the mr-internal
// putSlice and the exported mr.Recycle.
func isPoolRelease(p *Pass, call *ast.CallExpr) bool {
	fn := p.FuncFor(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	return (name == "putSlice" || name == "Recycle") && fn.Pkg().Name() == "mr"
}

// identObj resolves an identifier expression to its object (nil for
// blanks and non-identifiers).
func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}
